"""Column stores: where a table's arrays physically live.

The default store is the process heap — exactly what :class:`~repro.relational.table.Table`
has always done.  This module adds a second, *shared-memory* store so the
parallel layer can stop pickling the dataset into every worker:

* :func:`share_table` copies a table's arrays once into a single
  ``multiprocessing.shared_memory`` segment and returns a new table whose
  columns are zero-copy views of that segment;
* :class:`TableHandle` is the compact, picklable description of the
  segment layout (name, offsets, dictionaries, fingerprint) — a few
  hundred bytes that stand in for megabytes of column data;
* :func:`attach_table` resolves a handle back into a table.  In the
  creating process it returns the original table; in a worker it maps the
  segment (cached per segment, so a restarted stage re-attaches instead
  of re-pickling) and builds fresh column views over it.

Lifecycle: the creating process owns the segment through a refcounted
:class:`SharedMemoryStore` — ``release()`` on the last reference closes
and unlinks it.  Attached (worker-side) stores never unlink.  Crash
safety is belt and braces: segments are registered with the stdlib
resource tracker at creation (so a hard-crashed owner still gets cleaned
up), an :mod:`atexit` hook unlinks anything still live at interpreter
exit, and the attach path *un*registers from the resource tracker —
Python ≤ 3.12 registers on attach too, and without the suppression every
exiting worker would unlink a segment it does not own (the double-unlink
bug this module's tests audit for).

Nothing here is imported by :mod:`repro.relational.table` — the table
only carries an opaque ``_store`` slot — so the heap path pays nothing.
"""

from __future__ import annotations

import atexit
import logging
import os
import secrets
import threading
from dataclasses import dataclass
from hashlib import blake2s
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.relational.columns import CategoricalColumn, MeasureColumn
from repro.relational.schema import Schema, categorical, measure
from repro.relational.table import Table

logger = logging.getLogger(__name__)

__all__ = [
    "SEGMENT_PREFIX",
    "ColumnStore",
    "SharedMemoryStore",
    "TableHandle",
    "attach_table",
    "export_table",
    "leaked_segments",
    "resolve_table",
    "share_table",
    "shm_available",
    "shm_resident_bytes",
]

#: Every segment this package creates is named ``repro_<token>`` so leak
#: audits (tests, CI) can scan ``/dev/shm`` for strays without touching
#: other tenants' segments.
SEGMENT_PREFIX = "repro_"

#: Column payloads are laid out back to back at cache-line alignment.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Layout of one column inside a shared segment.

    The array dtype is implied by ``kind``: ``int32`` codes for
    categoricals (the dictionary itself travels in the spec — label
    tuples are tiny next to the code array), ``float64`` for measures.
    """

    name: str
    kind: str  # "categorical" | "measure"
    offset: int
    categories: tuple[str, ...] | None


@dataclass(frozen=True, slots=True)
class TableHandle:
    """Compact, picklable stand-in for a shared table.

    This is what crosses process boundaries instead of the column data:
    segment name, total size, row count, per-column layout, and a layout
    fingerprint that :func:`attach_table` re-derives to reject corrupted
    or mismatched handles before trusting any offset.
    """

    segment: str
    nbytes: int
    n_rows: int
    fingerprint: str
    columns: tuple[ColumnSpec, ...]


def _layout_fingerprint(
    columns: tuple[ColumnSpec, ...], n_rows: int, nbytes: int
) -> str:
    digest = blake2s(digest_size=8)
    digest.update(f"{n_rows}:{nbytes}".encode())
    for spec in columns:
        n_categories = len(spec.categories) if spec.categories is not None else -1
        digest.update(
            f"|{spec.name}:{spec.kind}:{spec.offset}:{n_categories}".encode()
        )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class ColumnStore:
    """Where a table's arrays live.  The base class is the heap store.

    A heap table carries no store object at all (``Table._store is
    None``); this class exists as the abstraction root and the vocabulary
    for ``Table.storage`` (``"heap"`` / ``"shm"``).
    """

    kind = "heap"
    handle: TableHandle | None = None

    def retain(self) -> "ColumnStore":
        return self

    def release(self) -> None:  # pragma: no cover - trivial
        pass


class SharedMemoryStore(ColumnStore):
    """A refcounted shared-memory segment backing one table's columns.

    The *owner* store (built by :func:`share_table`) unlinks the segment
    when its last reference is released.  Attached stores (built by
    :func:`attach_table` in workers) only ever view the mapping — the
    mapping itself belongs to the per-process attach cache and outlives
    any single stage.
    """

    kind = "shm"

    def __init__(self, shm, handle: TableHandle, *, owner: bool):
        self._shm = shm
        self.handle = handle
        self.owner = owner
        self.creator_pid = os.getpid()
        self.table: Table | None = None
        self._refs = 1
        self._lock = threading.Lock()
        self._closed = False

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    @property
    def closed(self) -> bool:
        return self._closed

    def retain(self) -> "SharedMemoryStore":
        with self._lock:
            if self._closed:
                raise ReproError(
                    f"shared segment {self.handle.segment} is already released"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the owner unlinks on the last drop."""
        with self._lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
        if not self.owner or self.creator_pid != os.getpid():
            # Attached view (or a fork-inherited owner record): the
            # mapping dies with the process; never unlink what we do
            # not own.
            return
        _close_quietly(self._shm)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        _LIVE.pop(self.handle.segment, None)


def _close_quietly(shm) -> None:
    """Close a mapping, tolerating outstanding numpy views.

    ``SharedMemory.close`` raises ``BufferError`` while array views are
    still exported; the views keep the mmap alive and it unmaps when they
    are garbage collected, so unlinking first is always safe.
    """
    try:
        shm.close()
    except BufferError:
        pass


def _untrack(shm) -> None:
    """Suppress the resource tracker's attach-side registration.

    CPython ≤ 3.12 registers every ``SharedMemory`` attach with the
    resource tracker; when the attaching process exits, the tracker then
    unlinks a segment it never owned.  Unregistering right after attach
    keeps ownership where it belongs — with the creator.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - platform-specific tracker quirks
        pass


# -- process-wide registries -------------------------------------------------

#: Owner stores created by this process (segment name -> store).  Drives
#: the resident-bytes gauge, the creator-local attach shortcut, and the
#: atexit sweep.
_LIVE: dict[str, SharedMemoryStore] = {}

#: Worker-side attach cache: segment name -> mapping.  A restarted stage
#: (or the next run against a resident dataset) re-resolves its handle
#: from here without re-mapping, and certainly without re-pickling.
_ATTACHED: dict[str, Any] = {}
_ATTACH_CACHE_LIMIT = 16

_availability_probe: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once)."""
    global _availability_probe
    if _availability_probe is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(
                name=SEGMENT_PREFIX + "probe_" + secrets.token_hex(4),
                create=True,
                size=16,
            )
            probe.close()
            probe.unlink()
            _availability_probe = True
        except Exception:
            _availability_probe = False
    return _availability_probe


def shm_resident_bytes() -> int:
    """Bytes of shared memory this process currently owns."""
    return sum(
        store.nbytes for store in list(_LIVE.values()) if not store.closed
    )


def leaked_segments() -> list[str]:
    """``repro_*`` segments present on the system right now.

    Used by the test-suite teardown audit and the CI leak-check step; on
    platforms without ``/dev/shm`` the audit is vacuous.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    try:
        return sorted(
            entry.name
            for entry in root.iterdir()
            if entry.name.startswith(SEGMENT_PREFIX)
        )
    except OSError:  # pragma: no cover - racing teardown
        return []


def _unlink_survivors() -> None:
    """Last-resort cleanup: unlink anything this process still owns."""
    for store in list(_LIVE.values()):
        if store.owner and store.creator_pid == os.getpid() and not store.closed:
            store._closed = True
            _close_quietly(store._shm)
            try:
                store._shm.unlink()
            except FileNotFoundError:
                pass
    _LIVE.clear()


atexit.register(_unlink_survivors)


# ---------------------------------------------------------------------------
# share / attach
# ---------------------------------------------------------------------------


def _column_payload(table: Table, name: str, is_categorical: bool):
    if is_categorical:
        column = table.categorical_column(name)
        return np.ascontiguousarray(column.codes), column.categories
    column = table.measure_column(name)
    return np.ascontiguousarray(column.data), None


def _create_segment(nbytes: int):
    from multiprocessing import shared_memory

    for _ in range(8):
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - 64-bit token collision
            continue
    raise ReproError("could not allocate a unique shared-memory segment name")


def share_table(table: Table) -> Table:
    """Copy ``table``'s arrays into one shared segment; return the view table.

    The result is value-identical to the input (same schema, same column
    contents, bit for bit) but its arrays are zero-copy views of a
    ``repro_*`` shared-memory segment, and ``table.handle()`` yields the
    compact :class:`TableHandle` workers attach to.  The caller's
    original table is untouched.  Raises :class:`ReproError` when shared
    memory is unavailable.
    """
    if not shm_available():
        raise ReproError("shared memory is not available on this platform")
    specs: list[ColumnSpec] = []
    payloads: list[np.ndarray] = []
    offset = 0
    for attr in table.schema:
        array, categories = _column_payload(table, attr.name, attr.is_categorical)
        kind = "categorical" if attr.is_categorical else "measure"
        specs.append(ColumnSpec(attr.name, kind, offset, categories))
        payloads.append(array)
        offset = _aligned(offset + array.nbytes)
    nbytes = max(1, offset)
    shm = _create_segment(nbytes)
    columns: dict[str, CategoricalColumn | MeasureColumn] = {}
    for spec, source in zip(specs, payloads):
        view = np.ndarray(
            source.shape, dtype=source.dtype, buffer=shm.buf, offset=spec.offset
        )
        view[:] = source
        columns[spec.name] = (
            CategoricalColumn(view, spec.categories)
            if spec.kind == "categorical"
            else MeasureColumn(view)
        )
    handle = TableHandle(
        segment=shm.name,
        nbytes=nbytes,
        n_rows=table.n_rows,
        fingerprint=_layout_fingerprint(tuple(specs), table.n_rows, nbytes),
        columns=tuple(specs),
    )
    shared = Table(table.schema, columns)
    store = SharedMemoryStore(shm, handle, owner=True)
    store.table = shared
    shared._store = store
    _LIVE[handle.segment] = store
    logger.debug(
        "shared table into %s (%d rows, %d bytes)", shm.name, table.n_rows, nbytes
    )
    return shared


def _open_segment(handle: TableHandle):
    from multiprocessing import shared_memory

    try:
        try:
            shm = shared_memory.SharedMemory(name=handle.segment, track=False)
        except TypeError:  # Python < 3.13: no track= keyword
            shm = shared_memory.SharedMemory(name=handle.segment)
            _untrack(shm)
    except FileNotFoundError:
        raise ReproError(
            f"shared segment {handle.segment} is gone (owner released it?)"
        ) from None
    if shm.size < handle.nbytes:
        _close_quietly(shm)
        raise ReproError(
            f"shared segment {handle.segment} is {shm.size} bytes; "
            f"handle expects {handle.nbytes}"
        )
    return shm


def _table_from_segment(handle: TableHandle, shm) -> Table:
    attrs = []
    columns: dict[str, CategoricalColumn | MeasureColumn] = {}
    for spec in handle.columns:
        if spec.kind == "categorical":
            array = np.ndarray(
                (handle.n_rows,), dtype=np.int32, buffer=shm.buf, offset=spec.offset
            )
            columns[spec.name] = CategoricalColumn(array, spec.categories)
            attrs.append(categorical(spec.name))
        else:
            array = np.ndarray(
                (handle.n_rows,), dtype=np.float64, buffer=shm.buf, offset=spec.offset
            )
            columns[spec.name] = MeasureColumn(array)
            attrs.append(measure(spec.name))
    table = Table(Schema(attrs), columns)
    table._store = SharedMemoryStore(shm, handle, owner=False)
    return table


def attach_table(handle: TableHandle) -> Table:
    """Resolve a :class:`TableHandle` into a table, zero-copy.

    In the creating process this is the original shared table.  Anywhere
    else the segment is mapped once (then served from the per-process
    attach cache) and *fresh* column views are built per resolution, so
    each stage starts with its own aggregate cache — worker state never
    bleeds across runs.  Every resolution bumps ``parallel.shm_attach``.
    """
    expected = _layout_fingerprint(handle.columns, handle.n_rows, handle.nbytes)
    if expected != handle.fingerprint:
        raise ReproError(
            f"table handle for {handle.segment} failed its layout fingerprint"
        )
    obs.counter("parallel.shm_attach").inc()
    store = _LIVE.get(handle.segment)
    if store is not None and not store.closed:
        if store.creator_pid == os.getpid() and store.table is not None:
            return store.table
        # Fork-inherited owner record: the parent's mapping is valid in
        # this child; build fresh views over it.
        return _table_from_segment(handle, store._shm)
    shm = _ATTACHED.get(handle.segment)
    if shm is None:
        shm = _open_segment(handle)
        _ATTACHED[handle.segment] = shm
        while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
            oldest = next(iter(_ATTACHED))
            _close_quietly(_ATTACHED.pop(oldest))
    return _table_from_segment(handle, shm)


def resolve_table(source: "Table | TableHandle") -> Table:
    """Handle-or-table polymorphism for worker init payloads."""
    if isinstance(source, TableHandle):
        return attach_table(source)
    return source


def export_table(
    table: Table, plane: str
) -> tuple["Table | TableHandle", SharedMemoryStore | None]:
    """What to ship to workers for ``table`` under ``plane``.

    Returns ``(payload, owned_store)``: on the heap plane the table
    itself (pickled by the pool — the plane the benchmarks measure
    against); on the shm plane its handle, sharing the table first if it
    is not already shared.  ``owned_store`` is non-``None`` exactly when
    this call created a segment — the caller must ``release()`` it once
    the workers are done.
    """
    if plane != "shm" or not shm_available():
        return table, None
    handle = table.handle()
    if handle is not None:
        return handle, None
    shared = share_table(table)
    return shared.handle(), shared._store
