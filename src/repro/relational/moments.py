"""Versioned per-(attribute, value, measure) moment store.

The batched permutation kernel and every comparison aggregate derive from
the same additive moments — count, sum, sum of squares, min, max per
(grouping attribute, value, measure).  :class:`MomentStore` keeps those
moments as single-attribute :class:`~repro.relational.cube
.MaterializedAggregate`\\ s, keyed by the table-version token of the rows
they summarize, so an appended row block updates them in O(delta)
(:meth:`MomentStore.advance` → :meth:`MaterializedAggregate.patched`)
instead of re-scanning the table.

Beyond the moments themselves, the store records which attribute *values*
the last appended block touched (:meth:`dirty_values`) — the partition-
granularity dirt map that drives selective re-testing (only pair families
containing a dirty value re-run) and partition-granular cache invalidation.

The store serializes to plain JSON (:meth:`to_dict` / :meth:`from_dict`;
floats round-trip exactly through ``repr``), so the CLI checkpoint can
carry it across processes for ``repro generate --since-checkpoint``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ReproError
from repro.relational.aggregates import GroupedSummary
from repro.relational.columns import NULL_LABEL
from repro.relational.cube import MaterializedAggregate
from repro.relational.table import Table

__all__ = ["MomentStore", "touched_labels"]

#: Version of the serialized moment-store format.
MOMENTS_VERSION = 1


def touched_labels(table: Table, attribute: str, delta_start: int) -> frozenset[str]:
    """Labels of ``attribute`` appearing in rows ``delta_start:``."""
    col = table.categorical_column(attribute)
    codes = np.unique(col.codes[delta_start:])
    return frozenset(
        col.categories[c] if c >= 0 else NULL_LABEL for c in codes
    )


class MomentStore:
    """Per-attribute moment sums of one table version, patchable in O(delta).

    Attributes
    ----------
    version:
        The content-version token of the table these moments summarize.
    n_rows:
        Row count of that table version.
    """

    __slots__ = ("version", "n_rows", "_aggregates", "_dirty")

    def __init__(
        self,
        version: str,
        n_rows: int,
        aggregates: Mapping[str, MaterializedAggregate],
        dirty: Mapping[str, frozenset[str]] | None = None,
    ):
        self.version = version
        self.n_rows = n_rows
        self._aggregates = dict(aggregates)
        self._dirty = dict(dirty or {})

    @classmethod
    def build(cls, table: Table, version: str) -> "MomentStore":
        """Cold build: one grouping pass per categorical attribute."""
        aggregates = {
            name: MaterializedAggregate.build(table, (name,))
            for name in table.schema.categorical_names
        }
        return cls(version, table.n_rows, aggregates)

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._aggregates)

    def moments(self, attribute: str) -> MaterializedAggregate:
        """The single-attribute moment aggregate for ``attribute``."""
        try:
            return self._aggregates[attribute]
        except KeyError:
            raise ReproError(f"no moments stored for attribute {attribute!r}") from None

    def dirty_values(self, attribute: str) -> frozenset[str]:
        """Values of ``attribute`` touched by the last :meth:`advance`.

        Empty for a cold-built store: nothing is dirty relative to itself.
        """
        return self._dirty.get(attribute, frozenset())

    def advance(self, table: Table, delta_start: int, version: str) -> "MomentStore":
        """A new store for ``table``, patched from this one in O(delta).

        ``table`` must extend this store's rows by an appended block
        starting at ``delta_start`` (== ``self.n_rows``); every
        per-attribute aggregate is patched bit-identically to a cold
        rebuild, and the dirt map records the touched values.
        """
        if delta_start != self.n_rows:
            raise ReproError(
                f"moment store holds {self.n_rows} rows; cannot advance "
                f"from a delta at row {delta_start}"
            )
        aggregates: dict[str, MaterializedAggregate] = {}
        dirty: dict[str, frozenset[str]] = {}
        for name in table.schema.categorical_names:
            old = self._aggregates.get(name)
            if old is None:
                aggregates[name] = MaterializedAggregate.build(table, (name,))
                dirty[name] = touched_labels(table, name, 0)
                continue
            aggregates[name] = old.patched(table, delta_start)
            dirty[name] = touched_labels(table, name, delta_start)
        return MomentStore(version, table.n_rows, aggregates, dirty)

    def seed_cache(self, cache, backend_name: str) -> int:
        """Insert every stored aggregate into an :class:`AggregateCache`.

        Returns the number of entries seeded.  Seeded with ``measures=None``
        (all measures materialized), so any measure subset is a hit.
        """
        seeded = 0
        for name, aggregate in self._aggregates.items():
            cache.seed(backend_name, (name,), None, aggregate)
            seeded += 1
        return seeded

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot (floats round-trip exactly)."""
        attributes = {}
        for name, aggregate in self._aggregates.items():
            summaries = {}
            for m, s in aggregate.summaries.items():
                summaries[m] = {
                    "count": s.count.tolist(),
                    "total": s.total.tolist(),
                    "total_sq": s.total_sq.tolist(),
                    "minimum": s.minimum.tolist(),
                    "maximum": s.maximum.tolist(),
                }
            attributes[name] = {
                "categories": list(aggregate.categories[name]),
                "keys": aggregate.keys[0].tolist() if aggregate.keys else [],
                "summaries": summaries,
            }
        return {
            "schema_version": MOMENTS_VERSION,
            "version": self.version,
            "n_rows": self.n_rows,
            "attributes": attributes,
            "dirty": {
                name: sorted(values) for name, values in self._dirty.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MomentStore":
        version = data.get("schema_version")
        if version != MOMENTS_VERSION:
            raise ReproError(
                f"unsupported moment-store version {version!r} "
                f"(expected {MOMENTS_VERSION})"
            )
        aggregates: dict[str, MaterializedAggregate] = {}
        for name, payload in data["attributes"].items():
            summaries = {
                m: GroupedSummary(
                    np.asarray(s["count"], dtype=np.float64),
                    np.asarray(s["total"], dtype=np.float64),
                    np.asarray(s["total_sq"], dtype=np.float64),
                    np.asarray(s["minimum"], dtype=np.float64),
                    np.asarray(s["maximum"], dtype=np.float64),
                )
                for m, s in payload["summaries"].items()
            }
            aggregates[name] = MaterializedAggregate(
                (name,),
                (np.asarray(payload["keys"], dtype=np.int64),),
                {name: tuple(payload["categories"])},
                summaries,
            )
        dirty = {
            name: frozenset(values)
            for name, values in (data.get("dirty") or {}).items()
        }
        return cls(data["version"], int(data["n_rows"]), aggregates, dirty)
