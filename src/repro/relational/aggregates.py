"""Aggregate functions and grouped (vectorized) implementations.

The engine supports the SQL aggregates the paper's comparison queries use
(``sum``, ``avg``, ``min``, ``max``, ``count``) plus ``var``/``stddev``
(sample statistics, matching the variance-greater insight type).

Two evaluation styles are provided:

* :func:`aggregate_all` — aggregate a whole array (no grouping);
* :func:`aggregate_grouped` — aggregate per group given dense group ids,
  using ``bincount`` / ``ufunc.at`` so group-by cost is linear in the input.

NULLs (NaN) are ignored, as in SQL; a group with no non-null value yields
NaN (``count`` yields 0).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import QueryError

#: Names of all supported aggregate functions, lower-case.
AGGREGATE_NAMES: tuple[str, ...] = ("count", "sum", "avg", "min", "max", "var", "stddev")

#: The aggregates used by default for comparison queries (paper experiments
#: use sum and avg; the full set is available through configuration).
DEFAULT_COMPARISON_AGGREGATES: tuple[str, ...] = ("sum", "avg")


def is_aggregate(name: str) -> bool:
    """True if ``name`` (case-insensitive) is a supported aggregate."""
    return name.lower() in AGGREGATE_NAMES


def _masked(values: np.ndarray) -> np.ndarray:
    return values[~np.isnan(values)]


def aggregate_all(name: str, values: np.ndarray) -> float:
    """Aggregate ``values`` (1-D float array) with aggregate ``name``.

    NaNs are skipped.  Empty input yields NaN (0 for ``count``), mirroring
    SQL semantics where aggregates over empty groups are NULL but COUNT is 0.
    """
    name = name.lower()
    if not is_aggregate(name):
        raise QueryError(f"unknown aggregate function {name!r}")
    data = _masked(np.asarray(values, dtype=np.float64))
    if name == "count":
        return float(data.size)
    if data.size == 0:
        return float("nan")
    if name == "sum":
        return float(data.sum())
    if name == "avg":
        return float(data.mean())
    if name == "min":
        return float(data.min())
    if name == "max":
        return float(data.max())
    if name == "var":
        return float(data.var(ddof=1)) if data.size > 1 else float("nan")
    if name == "stddev":
        return float(data.std(ddof=1)) if data.size > 1 else float("nan")
    raise AssertionError(name)


class GroupedSummary:
    """Additive per-group summary from which every aggregate derives.

    Stores, per group: non-null count, sum, sum of squares, min, and max.
    The summary is *additive*: summaries at a fine group-by granularity can
    be rolled up to any coarser granularity without revisiting base data.
    Algorithm 2's partial-aggregate cache (Section 5.2.2) relies on this to
    answer all 2-attribute group-bys from one covering group-by set.
    """

    __slots__ = ("count", "total", "total_sq", "minimum", "maximum")

    def __init__(
        self,
        count: np.ndarray,
        total: np.ndarray,
        total_sq: np.ndarray,
        minimum: np.ndarray,
        maximum: np.ndarray,
    ):
        self.count = count
        self.total = total
        self.total_sq = total_sq
        self.minimum = minimum
        self.maximum = maximum

    @property
    def n_groups(self) -> int:
        return int(self.count.size)

    @classmethod
    def from_values(cls, group_ids: np.ndarray, values: np.ndarray, n_groups: int) -> "GroupedSummary":
        """Summarize ``values`` per group (``group_ids`` dense in [0, n_groups))."""
        values = np.asarray(values, dtype=np.float64)
        valid = ~np.isnan(values)
        gid = group_ids[valid]
        vals = values[valid]
        count = np.bincount(gid, minlength=n_groups).astype(np.float64)
        total = np.bincount(gid, weights=vals, minlength=n_groups).astype(np.float64)
        total_sq = np.bincount(gid, weights=vals * vals, minlength=n_groups).astype(np.float64)
        minimum = np.full(n_groups, np.inf)
        maximum = np.full(n_groups, -np.inf)
        np.minimum.at(minimum, gid, vals)
        np.maximum.at(maximum, gid, vals)
        empty = count == 0
        minimum[empty] = np.nan
        maximum[empty] = np.nan
        return cls(count, total, total_sq, minimum, maximum)

    def rollup(self, coarse_ids: np.ndarray, n_groups: int) -> "GroupedSummary":
        """Re-aggregate this summary to a coarser grouping.

        ``coarse_ids[g]`` gives the coarse group of fine group ``g``.
        """
        count = np.bincount(coarse_ids, weights=self.count, minlength=n_groups)
        total = np.bincount(coarse_ids, weights=np.nan_to_num(self.total), minlength=n_groups)
        total_sq = np.bincount(coarse_ids, weights=np.nan_to_num(self.total_sq), minlength=n_groups)
        minimum = np.full(n_groups, np.inf)
        maximum = np.full(n_groups, -np.inf)
        nonempty = self.count > 0
        np.minimum.at(minimum, coarse_ids[nonempty], self.minimum[nonempty])
        np.maximum.at(maximum, coarse_ids[nonempty], self.maximum[nonempty])
        empty = count == 0
        minimum[empty] = np.nan
        maximum[empty] = np.nan
        return GroupedSummary(count, total, total_sq, minimum, maximum)

    def finalize(self, name: str) -> np.ndarray:
        """Per-group values of aggregate ``name`` derived from the summary."""
        name = name.lower()
        if name == "count":
            return self.count.copy()
        with np.errstate(invalid="ignore", divide="ignore"):
            if name == "sum":
                out = self.total.copy()
                out[self.count == 0] = np.nan
                return out
            if name == "avg":
                return np.where(self.count > 0, self.total / self.count, np.nan)
            if name == "min":
                return self.minimum.copy()
            if name == "max":
                return self.maximum.copy()
            if name in ("var", "stddev"):
                n = self.count
                mean_sq = np.where(n > 0, self.total_sq / n, np.nan)
                mean = np.where(n > 0, self.total / n, np.nan)
                # Sample variance with Bessel's correction; needs n >= 2.
                var = np.where(n > 1, (mean_sq - mean * mean) * n / (n - 1), np.nan)
                var = np.maximum(var, 0.0)  # guard tiny negative round-off
                return np.sqrt(var) if name == "stddev" else var
        raise QueryError(f"unknown aggregate function {name!r}")


def aggregate_grouped(
    name: str, group_ids: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group aggregate ``name`` of ``values``; convenience wrapper."""
    if not is_aggregate(name):
        raise QueryError(f"unknown aggregate function {name!r}")
    summary = GroupedSummary.from_values(group_ids, values, n_groups)
    return summary.finalize(name)


#: Scalar (non-aggregate) functions available in SQL expressions.
SCALAR_FUNCTIONS: dict[str, Callable[..., np.ndarray]] = {
    "abs": np.abs,
    "round": np.round,
    "floor": np.floor,
    "ceil": np.ceil,
    "sqrt": np.sqrt,
    "ln": np.log,
    "exp": np.exp,
}
