"""Warn-once plumbing for the legacy entry points.

The old constructors (:class:`~repro.generation.pipeline.NotebookGenerator`,
the ``n_threads``/``parallel_backend`` knobs on
:class:`~repro.generation.config.GenerationConfig`) keep working as shims
over :mod:`repro.api` / :class:`~repro.config.ReproConfig`, but each emits
one :class:`DeprecationWarning` per process — loud enough to notice,
quiet enough not to flood a loop that constructs thousands of configs.
"""

from __future__ import annotations

import warnings

_emitted: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning, once per ``key``."""
    if key in _emitted:
        return
    _emitted.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset() -> None:
    """Forget which warnings fired (test isolation hook)."""
    _emitted.clear()
