"""Command-line interface: generate a comparison notebook from a CSV file.

Usage::

    python -m repro generate data.csv --budget 10 --out notebook.ipynb
    python -m repro generate data.csv --preset wsc-unb-approx --sample-rate 0.2
    python -m repro generate data.csv --backend sqlite
    python -m repro generate data.csv --stats-kernel legacy
    python -m repro generate data.csv --deadline 5 --checkpoint run.ckpt.json
    python -m repro generate data.csv --resume run.ckpt.json --out notebook.ipynb
    python -m repro generate grown.csv --checkpoint run.ckpt.json --since-checkpoint
    python -m repro profile data.csv --trace trace.json
    python -m repro inspect data.csv
    python -m repro datasets --out-dir ./demo-data
    python -m repro flight repro-flight.json

Sub-commands
------------
``generate``
    Run the full pipeline on a CSV and write ``.ipynb`` and/or ``.sql``.
    Runs under the resilient controller: ``--deadline`` bounds the wall
    clock, ``--checkpoint``/``--resume`` snapshot and restore stage
    boundaries, and the per-stage run report is printed at the end.
    ``--trace`` additionally writes the run's span tree as Chrome
    trace-event JSON.
``profile``
    Run the pipeline purely for observability: print the span tree and
    top-k hotspots, optionally exporting the Chrome trace (``--trace``)
    and a Prometheus-style metrics dump (``--metrics-out``).
``recut``
    Re-solve the TAP over a saved run (no statistics re-run).
``inspect``
    Print the inferred schema, per-column statistics, detected functional
    dependencies, and the comparison-query count of Lemma 3.2.
``datasets``
    Materialize the synthetic evaluation datasets as CSV files.
``serve``
    Run the multi-tenant notebook-generation service: a dataset registry
    of warm sessions, async job submission with per-request deadline
    budgets, admission control, and per-dataset circuit breakers (see
    ``docs/serving.md``).  ``REPRO_FAULTS`` reaches the server's chaos
    fault points (``serve.admission``, ``serve.handler``, ``serve.job``,
    ``serve.evict``).  ``--flight-dump`` names where the flight
    recorder's ring of job post-mortems lands on crash or SIGTERM.
``flight``
    Pretty-print a flight-recorder dump file for post-mortem analysis
    (see ``docs/observability.md``).

The ``REPRO_FAULTS`` environment variable (e.g. ``stats:kill`` or
``tap:stall:10``) activates deterministic fault injection — a test hook,
see ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from pathlib import Path

from repro import __version__, obs
from repro.api import Session
from repro.backend import BACKEND_NAMES
from repro.config import ReproConfig
from repro.parallel import PARALLEL_BACKEND_NAMES, STORE_NAMES
from repro.stats import KERNEL_NAMES
from repro.datasets import covid_table, enedis_table, flights_table, vaccine_table
from repro.errors import ReproError
from repro.generation import preset, preset_names
from repro.insights import count_comparison_queries, table_adom_sizes
from repro.notebook import to_sql_script, write_ipynb
from repro.relational import collect_statistics, detect_functional_dependencies, read_csv, write_csv

logger = logging.getLogger(__name__)


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--verbose", action="store_true",
                        help="enable debug logging on stderr")
    common.add_argument("--quiet", action="store_true",
                        help="suppress progress output and warnings")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Comparison-notebook generator (EDBT 2022 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", parents=[common],
                         help="generate a comparison notebook from a CSV")
    gen.add_argument("csv", type=Path, nargs="?", default=None,
                     help="input CSV file (optional when --resume holds the "
                          "generation stage)")
    gen.add_argument("--budget", type=int, default=10, help="notebook length eps_t (default 10)")
    gen.add_argument("--epsilon-distance", type=float, default=None,
                     help="distance bound eps_d (default: 4 per transition)")
    gen.add_argument("--preset", choices=preset_names(), default=None,
                     help="use a named Table 3/7 configuration")
    gen.add_argument("--sample-rate", type=float, default=0.1,
                     help="sampling rate for sampling presets (default 0.1)")
    gen.add_argument("--permutations", type=int, default=200,
                     help="permutations per statistical test (default 200)")
    gen.add_argument("--solver", choices=("heuristic", "exact"), default=None,
                     help="TAP solver (default from preset, else heuristic)")

    # One home for every execution knob; the CI matrix drives the same
    # four dimensions through $REPRO_BACKEND / $REPRO_STATS_KERNEL /
    # $REPRO_WORKERS.  None of them ever changes results — only speed.
    execution = gen.add_argument_group(
        "execution",
        "how the pipeline runs (results are identical for every choice)")
    execution.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                           help="execution backend for scans and group-bys: "
                                "columnar (in-process NumPy, default) or sqlite "
                                "(SQL pushdown); default honours $REPRO_BACKEND")
    execution.add_argument("--stats-kernel", choices=KERNEL_NAMES, default=None,
                           help="permutation-test kernel: batched (one BLAS "
                                "product per shared batch, default) or legacy "
                                "(per-test gather); default honours "
                                "$REPRO_STATS_KERNEL")
    execution.add_argument("--workers", type=int, default=None,
                           help="worker count for the statistics and "
                                "hypothesis-evaluation stages (default "
                                "honours $REPRO_WORKERS, else 1 = in-process)")
    execution.add_argument("--parallel-backend", choices=PARALLEL_BACKEND_NAMES,
                           default=None,
                           help="pool flavour when --workers > 1: processes "
                                "(sharded subprocess pool, default) or threads "
                                "(shared-memory, GIL-bound)")
    execution.add_argument("--store", choices=STORE_NAMES, default=None,
                           help="column-store data plane for worker processes: "
                                "shm (zero-copy shared memory), heap "
                                "(per-worker pickled copies), or auto (shm "
                                "when a subprocess pool is active; default, "
                                "honours $REPRO_SHM)")
    execution.add_argument("--since-checkpoint", action="store_true",
                           help="incremental re-run: reuse the stats memo saved "
                                "in --checkpoint by an earlier run over a row "
                                "prefix of this CSV, re-testing only the pair "
                                "families the appended rows touched (the "
                                "notebook is byte-identical to a full run)")
    # Hidden alias: the pre-5.x spelling of --workers keeps working, but
    # now warns once per process (see repro.deprecation).
    execution.add_argument("--threads", type=int, default=None,
                           dest="legacy_threads", help=argparse.SUPPRESS)
    gen.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="wall-clock budget; stages degrade instead of overrunning")
    gen.add_argument("--checkpoint", type=Path, default=None, metavar="PATH",
                     help="write stage snapshots here (resume with --resume)")
    gen.add_argument("--resume", type=Path, default=None, metavar="PATH",
                     help="resume from a stage checkpoint (skips completed stages)")
    gen.add_argument("--out", type=Path, default=None, help="output .ipynb path")
    gen.add_argument("--sql-out", type=Path, default=None, help="output .sql script path")
    gen.add_argument("--table-name", default=None, help="table name used in the SQL")
    gen.add_argument("--no-previews", action="store_true",
                     help="skip executing queries for result previews")
    gen.add_argument("--save-run", type=Path, default=None,
                     help="also save the full run as JSON (re-cut later with 'recut')")
    gen.add_argument("--trace", type=Path, default=None, metavar="PATH",
                     help="write the run's Chrome trace-event JSON here")

    prof = sub.add_parser(
        "profile", parents=[common],
        help="run the pipeline and print the span tree + top-k hotspots"
    )
    prof.add_argument("csv", type=Path, help="input CSV file")
    prof.add_argument("--budget", type=int, default=10,
                      help="notebook length eps_t (default 10)")
    prof.add_argument("--preset", choices=preset_names(), default=None,
                      help="use a named Table 3/7 configuration")
    prof.add_argument("--sample-rate", type=float, default=0.1,
                      help="sampling rate for sampling presets (default 0.1)")
    prof.add_argument("--permutations", type=int, default=200,
                      help="permutations per statistical test (default 200)")
    prof.add_argument("--workers", type=int, default=None,
                      help="worker count (default honours $REPRO_WORKERS)")
    prof.add_argument("--store", choices=STORE_NAMES, default=None,
                      help="column-store data plane (auto, heap, or shm)")
    prof.add_argument("--threads", type=int, default=None, dest="legacy_threads",
                      help=argparse.SUPPRESS)
    prof.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                      help="execution backend (columnar or sqlite)")
    prof.add_argument("--stats-kernel", choices=KERNEL_NAMES, default=None,
                      help="permutation-test kernel (batched or legacy)")
    prof.add_argument("--trace", type=Path, default=None, metavar="PATH",
                      help="write Chrome trace-event JSON (chrome://tracing, Perfetto)")
    prof.add_argument("--metrics-out", type=Path, default=None, metavar="PATH",
                      help="write a Prometheus-style text dump of all metrics")
    prof.add_argument("--top", type=int, default=10,
                      help="number of hotspots to print (default 10)")
    prof.add_argument("--out", type=Path, default=None,
                      help="also write the generated .ipynb here")

    recut = sub.add_parser(
        "recut", parents=[common],
        help="re-solve the TAP over a saved run (no statistics re-run)"
    )
    recut.add_argument("run", type=Path, help="a run saved with --save-run")
    recut.add_argument("--budget", type=int, required=True, help="new notebook length eps_t")
    recut.add_argument("--epsilon-distance", type=float, default=None)
    recut.add_argument("--csv", type=Path, default=None,
                       help="original CSV (enables result previews/charts)")
    recut.add_argument("--out", type=Path, required=True, help="output .ipynb path")

    ins = sub.add_parser("inspect", parents=[common],
                         help="inspect a CSV's schema and statistics")
    ins.add_argument("csv", type=Path)

    data = sub.add_parser("datasets", parents=[common],
                          help="write the synthetic evaluation datasets")
    data.add_argument("--out-dir", type=Path, default=Path("."))
    data.add_argument("--scale", type=float, default=0.25)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the multi-tenant notebook-generation service",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port; 0 binds an ephemeral port (default 8765)")
    serve.add_argument("--dataset", action="append", default=[],
                       metavar="NAME=CSV",
                       help="preload a dataset into the registry (repeatable)")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="admission queue depth before requests shed (default 16)")
    serve.add_argument("--max-cost", type=float, default=64.0,
                       help="in-flight estimated-cost budget in units (default 64)")
    serve.add_argument("--default-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request deadline budget when the request "
                            "names none (default 30)")
    serve.add_argument("--executors", type=int, default=1,
                       help="job executor threads (default 1; runs serialize "
                            "on the process-wide run lock regardless)")
    serve.add_argument("--breaker-failures", type=int, default=3,
                       help="consecutive job failures before a dataset's "
                            "circuit opens (default 3)")
    serve.add_argument("--breaker-reset", type=float, default=30.0,
                       metavar="SECONDS",
                       help="circuit cool-down before a half-open probe (default 30)")
    serve.add_argument("--flight-dump", type=Path, default=Path("repro-flight.json"),
                       metavar="PATH",
                       help="where the flight recorder dumps its ring of job "
                            "post-mortems on crash or SIGTERM (default "
                            "repro-flight.json; read back with 'repro flight')")

    flight = sub.add_parser(
        "flight", parents=[common],
        help="pretty-print a flight-recorder dump for post-mortems",
    )
    flight.add_argument("dump", type=Path,
                        help="a dump written by the serving layer "
                             "(--flight-dump) or GET /debug/flight saved to disk")
    flight.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the raw records as JSON instead of a table")
    return parser


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """Wire the library's module loggers to stderr.

    ``--verbose`` shows everything (DEBUG); the default shows warnings
    (degradations, timeouts); ``--quiet`` shows only errors.

    Idempotent across repeated :func:`main` calls in one process (tests,
    embedding apps): our handler is tagged, so exactly one is ever
    attached — even when the application installed stream handlers of its
    own — and the level always reflects the *latest* invocation's flags.
    """
    level = logging.DEBUG if verbose else logging.ERROR if quiet else logging.WARNING
    root = logging.getLogger("repro")
    root.setLevel(level)
    for existing in root.handlers:
        if getattr(existing, "_repro_cli", False):
            return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("[%(levelname)s] %(name)s: %(message)s"))
    handler._repro_cli = True
    root.addHandler(handler)


def _config_from_args(args: argparse.Namespace) -> ReproConfig:
    """One :class:`ReproConfig` from the shared generate/profile flags."""
    if getattr(args, "preset", None):
        generator = preset(args.preset, sample_rate=args.sample_rate)
        config = ReproConfig(
            generation=generator.config,
            solver=generator.solver,
            exact_timeout=generator.exact_timeout,
        )
    else:
        config = ReproConfig().with_significance(n_permutations=args.permutations)
    if getattr(args, "backend", None):
        config = config.with_generation(backend=args.backend)
    if getattr(args, "stats_kernel", None):
        config = config.with_significance(kernel=args.stats_kernel)
    workers = getattr(args, "workers", None)
    legacy_threads = getattr(args, "legacy_threads", None)
    if legacy_threads is not None:
        from repro.deprecation import warn_once

        warn_once(
            "cli--threads",
            "--threads is deprecated and will be removed; use --workers",
        )
        if not workers:
            workers = legacy_threads
    parallel_changes = {}
    if workers:
        parallel_changes["workers"] = workers
    if getattr(args, "parallel_backend", None):
        parallel_changes["backend"] = args.parallel_backend
    if getattr(args, "store", None):
        parallel_changes["store"] = args.store
    if parallel_changes:
        config = config.with_parallel(**parallel_changes)
    if getattr(args, "solver", None):
        config = config.replace(solver=args.solver)
    return config


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.persistence import load_checkpoint, save_run

    say = (lambda m: None) if args.quiet else (lambda m: print(f"[repro] {m}"))
    from repro.runtime import parse_fault_plan

    faults = parse_fault_plan(os.environ.get("REPRO_FAULTS"))
    if faults.active:
        say("fault injection active (REPRO_FAULTS)")

    resume = load_checkpoint(args.resume) if args.resume else None
    table = None
    if args.csv is not None:
        table = read_csv(args.csv, strict=True)
        say(f"loaded {table.n_rows} rows from {args.csv}")
    elif resume is None or resume.outcome is None:
        raise ReproError(
            "a CSV argument is required unless --resume points at a checkpoint "
            "that already contains the generation stage"
        )
    table_name = args.table_name or (args.csv.stem if args.csv else "dataset")

    config = _config_from_args(args).replace(
        budget=args.budget,
        epsilon_distance=args.epsilon_distance,
        deadline_seconds=args.deadline,
    )

    since, memo = None, None
    if args.since_checkpoint:
        memo = _load_since_memo(args, table, say)
        since = memo.version if memo is not None else None

    with Session(table, config=config, table_name=table_name) as session:
        if memo is not None:
            session.restore_memo(memo)
        run = session.generate(
            checkpoint_path=args.checkpoint,
            resume=resume,
            faults=faults,
            progress=say,
            since=since,
        )

        if not run.selected:
            _print_report(run, args.quiet)
            print("no significant comparison insights found; nothing to write",
                  file=sys.stderr)
            return 1

        say(f"selected {len(run.selected)} queries "
            f"(interest {run.solution.interest:.3f}, distance {run.solution.distance:.2f})")
        for rank, g in enumerate(run.selected, start=1):
            say(f"  {rank}. {g.query.describe()}")

        out = args.out or (
            args.csv.with_suffix(".comparisons.ipynb") if args.csv else Path("comparisons.ipynb")
        )
        notebook = session.render(
            run,
            title=f"Comparison notebook — {table_name}",
            include_previews=not args.no_previews,
            faults=faults,
        )
        write_ipynb(notebook, out)
        print(f"wrote {out}")
        if args.sql_out:
            args.sql_out.write_text(to_sql_script(notebook), encoding="utf-8")
            print(f"wrote {args.sql_out}")
        if args.save_run:
            save_run(run, args.save_run)
            print(f"wrote {args.save_run}")
        if args.trace:
            obs.write_chrome_trace(session.tracer, args.trace, session.metrics)
            say(f"wrote trace {args.trace}")
        say(obs.metrics_summary_line(session.metrics))
    _print_report(run, args.quiet)
    return 0


def _load_since_memo(args: argparse.Namespace, table, say):
    """The validated stats memo behind ``--since-checkpoint``, or None.

    Every way the memo can be unusable — no checkpoint flag, unreadable
    file, no stored memo, or a memo whose version is not a row prefix of
    the loaded CSV — downgrades to a full run with a warning, never an
    error: the flag is a speed knob, and the output is byte-identical
    either way.
    """
    from repro.persistence import PersistenceError, load_checkpoint
    from repro.relational.table import content_token

    if args.checkpoint is None:
        raise ReproError("--since-checkpoint requires --checkpoint PATH")
    if table is None:
        raise ReproError("--since-checkpoint requires a CSV argument")
    try:
        prior = load_checkpoint(args.checkpoint)
    except PersistenceError as exc:
        logger.warning("--since-checkpoint: %s; running in full", exc)
        return None
    memo = prior.memo
    if memo is None:
        logger.warning(
            "--since-checkpoint: %s holds no incremental stats memo; "
            "running the statistical stage in full", args.checkpoint,
        )
        return None
    if memo.n_rows > table.n_rows or content_token(table, memo.n_rows) != memo.version:
        logger.warning(
            "--since-checkpoint: checkpointed version %s is not a row prefix "
            "of %s; running the statistical stage in full",
            memo.version, args.csv,
        )
        return None
    say(f"incremental run since version {memo.version} "
        f"({table.n_rows - memo.n_rows} appended row(s))")
    return memo


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the pipeline purely for its observability output."""
    table = read_csv(args.csv, strict=True)
    config = _config_from_args(args).replace(budget=args.budget)

    session = Session(table, config=config, table_name=args.csv.stem)
    with session:
        run = session.generate()
        notebook = session.render(run)
        if args.out:
            write_ipynb(notebook, args.out)

    tracer, metrics = session.tracer, session.metrics
    metrics.record_peak_rss()
    if not args.quiet:
        print(obs.format_span_tree(tracer))
        print()
        print(obs.format_hotspots(tracer, top_k=args.top))
        print()
        print(obs.metrics_summary_line(metrics))
        print(_data_plane_line(session, metrics))
    if args.trace:
        obs.write_chrome_trace(tracer, args.trace, metrics)
        print(f"wrote {args.trace}")
    if args.metrics_out:
        args.metrics_out.write_text(obs.to_prometheus_text(metrics), encoding="utf-8")
        print(f"wrote {args.metrics_out}")
    if args.out:
        print(f"wrote {args.out}")
    return 0


def _data_plane_line(session: Session, metrics) -> str:
    """One-line data-plane summary: store kind, IPC volume, shm residency."""
    snapshot = metrics.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    ipc = int(counters.get("parallel.ipc_bytes", 0.0))
    attaches = int(counters.get("parallel.shm_attach", 0.0))
    resident = int(gauges.get("data_plane.shm_resident_bytes", 0.0))
    return (
        f"data plane: store={session.storage} ipc_bytes={ipc} "
        f"shm_attaches={attaches} shm_resident_bytes={resident}"
    )


def _print_report(run, quiet: bool) -> int:
    if run.report is None:
        return 0
    if quiet:
        return 0
    for line in run.report.summary_lines():
        print(f"[repro] {line}")
    return 0


def _cmd_recut(args: argparse.Namespace) -> int:
    from repro.notebook import build_notebook
    from repro.persistence import load_outcome, resolve_outcome

    outcome = load_outcome(args.run)
    run = resolve_outcome(outcome, budget=args.budget, epsilon_distance=args.epsilon_distance)
    if not run.selected:
        print("no queries selected under the new bounds", file=sys.stderr)
        return 1
    table = read_csv(args.csv) if args.csv else None
    table_name = args.csv.stem if args.csv else "dataset"
    notebook = build_notebook(
        run.selected, table=table, table_name=table_name,
        title=f"Comparison notebook — {table_name} (recut)",
    )
    write_ipynb(notebook, args.out)
    print(f"selected {len(run.selected)} of {len(outcome.queries)} saved queries")
    print(f"wrote {args.out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    table = read_csv(args.csv)
    print(f"{args.csv}: {table.n_rows} rows")
    print(f"schema: {table.schema}")
    stats = collect_statistics(table)
    print("\ncolumns:")
    for attr in table.schema:
        s = stats[attr.name]
        print(f"  {attr.name:<24} {attr.kind.value:<12} distinct={s.n_distinct:<8} nulls={s.n_null}")
    fds = detect_functional_dependencies(table)
    if fds:
        print("\nfunctional dependencies (excluded attribute pairs):")
        for fd in fds:
            print(f"  {fd}")
    adoms = list(table_adom_sizes(table).values())
    n_queries = count_comparison_queries(adoms, len(table.schema.measure_names), 2)
    print(f"\npotential comparison queries (Lemma 3.2, f=2): {n_queries}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    args.out_dir.mkdir(parents=True, exist_ok=True)
    tables = {
        "vaccine": vaccine_table(args.scale),
        "enedis": enedis_table(args.scale),
        "flights": flights_table(args.scale),
        "covid": covid_table(),
    }
    for name, table in tables.items():
        path = args.out_dir / f"{name}.csv"
        write_csv(table, path)
        print(f"wrote {path} ({table.n_rows} rows)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runtime import parse_fault_plan
    from repro.serve import ReproServer, ServeConfig

    say = (lambda m: None) if args.quiet else (lambda m: print(f"[repro] {m}"))
    faults = parse_fault_plan(os.environ.get("REPRO_FAULTS"))
    if faults.active:
        say("fault injection active (REPRO_FAULTS)")

    preload: list[tuple[str, Path]] = []
    for spec in args.dataset:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ReproError(
                f"malformed --dataset {spec!r} (want NAME=PATH.csv)"
            )
        preload.append((name, Path(path)))

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_queue_depth=args.max_queue,
        max_inflight_cost=args.max_cost,
        default_deadline_seconds=args.default_deadline,
        executors=args.executors,
        breaker_failures=args.breaker_failures,
        breaker_reset_seconds=args.breaker_reset,
    )
    server = ReproServer(config, faults=faults)
    server.start()
    uninstall_flight = server.flight.install(args.flight_dump)
    say(f"flight recorder dumps to {args.flight_dump} on crash/SIGTERM")
    try:
        for name, path in preload:
            entry = server.registry.register(name, path)
            say(f"registered dataset {name} "
                f"({entry.session.table.n_rows} rows, "
                f"cost {entry.cost_units:.1f} units)")
        print(f"serving on {server.url} (Ctrl-C to stop)")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            say("shutting down")
    finally:
        uninstall_flight()
        server.shutdown()
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    """Pretty-print a flight-recorder dump (the post-mortem reader)."""
    import json as _json

    from repro.serve.flight import load_dump

    try:
        doc = load_dump(args.dump)
    except (OSError, ValueError, _json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    records = doc["records"]
    if args.as_json:
        print(_json.dumps(records, indent=1))
        return 0

    print(f"{args.dump}: {len(records)} record(s), "
          f"reason={doc.get('reason', '?')}")
    if not records:
        return 0
    print(f"{'job':<12} {'dataset':<12} {'status':<10} {'fingerprint':<18} "
          f"{'att':>3} {'queue_s':>8} {'total_s':>8}  detail")
    for rec in records:
        detail = rec.get("shed_reason") or rec.get("error") or ""
        if rec.get("degradations"):
            joined = ",".join(rec["degradations"])
            detail = f"{detail} [degraded: {joined}]".strip()
        print(f"{rec.get('job', '?'):<12} {rec.get('dataset', '?'):<12} "
              f"{rec.get('status', '?'):<10} "
              f"{rec.get('config_fingerprint', '?'):<18} "
              f"{rec.get('attempts', 0):>3} "
              f"{rec.get('queue_seconds', 0.0):>8.3f} "
              f"{rec.get('total_seconds', 0.0):>8.3f}  {detail}")
        for span in rec.get("spans", [])[:3]:
            flags = "".join(
                tag for tag, on in ((" open", span.get("open")),
                                    (" errors", span.get("errors")))
                if on
            )
            print(f"{'':<12} span {span['name']} x{span['count']} "
                  f"{span['seconds']:.3f}s{flags}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(getattr(args, "verbose", False), getattr(args, "quiet", False))
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "recut":
            return _cmd_recut(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        if args.command == "datasets":
            return _cmd_datasets(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "flight":
            return _cmd_flight(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Covers missing inputs and unwritable outputs (FileNotFoundError,
        # PermissionError, IsADirectoryError, ...): one line, exit code 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(args.command)


if __name__ == "__main__":
    raise SystemExit(main())
