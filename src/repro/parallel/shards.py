"""Deterministic sharding of the two expensive pipeline stages.

This module decides *what* a pool task is; :mod:`repro.parallel.pool`
decides where it runs.  Two shard shapes exist:

* **stats shards** — one attribute's candidates, chunked at pair-family
  boundaries (:func:`~repro.insights.significance.family_chunks`).  Chunk
  results merge per attribute *in chunk order* before the BH correction,
  and every permutation batch derives its RNG from the root seed plus a
  chunk-independent key, so any worker count reproduces the sequential
  results bit for bit.  Completed shards can be recorded in a
  :class:`ShardStore` (the mid-shard checkpoint hook) and skipped on
  resume.

* **support shards** — one grouping attribute's slice of the hypothesis
  evaluation.  A worker evaluates every (pair-group × its grouping ×
  aggregate) combination and ships back compact records; the parent then
  *replays the sequential iteration order* (pair groups in insertion
  order × valid groupings × aggregates) over those records, so the
  assembled query list, evidence counts, and even the aggregation-query /
  backend-statement counters are identical to a ``workers=1`` run
  (per-grouping shards partition the evaluators' ``(grouping, selection)``
  cache keys cleanly).

Workers re-create their own execution backend (SQLite connections never
cross process boundaries) and their spans/counters are folded back into
the main trace by the pool.
"""

from __future__ import annotations

import logging
from typing import Sequence

from repro import obs
from repro.insights.insight import CandidateInsight, InsightEvidence, TestedInsight
from repro.insights.significance import (
    SignificanceConfig,
    family_chunks,
    finalize_attribute,
    run_attribute_chunk,
)
from repro.insights.types import insight_type
from repro.parallel.config import ParallelConfig, resolve_store_kind
from repro.parallel.pool import ShardPool, WorkerContext
from repro.relational.store import export_table, resolve_table
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult
from repro.relational.table import Table
from repro.runtime.deadline import Deadline
from repro.stats.permutation import TestResult

logger = logging.getLogger(__name__)

__all__ = [
    "ShardStore",
    "evidence_supported",
    "run_stats_shards",
    "run_support_shards",
    "stats_shard_ids",
]


class ShardStore:
    """Completed stats shards, keyed by shard id (the mid-shard checkpoint).

    The base class is a plain in-memory dict; the persistent variant
    (:class:`repro.persistence.PersistentShardStore`) overrides
    :meth:`put` to also write the ``stats-partial`` checkpoint file.
    A store only makes sense for one (config, dataset) pair — the
    persistent variant guards that with a config token.
    """

    def __init__(self, completed: dict[str, tuple[list, list]] | None = None):
        self._completed: dict[str, tuple[list, list]] = dict(completed or {})

    def get(self, shard_id: str) -> tuple[list, list] | None:
        return self._completed.get(shard_id)

    def put(
        self,
        shard_id: str,
        oriented: list[CandidateInsight],
        results: list[TestResult],
    ) -> None:
        self._completed[shard_id] = (oriented, results)

    def __len__(self) -> int:
        return len(self._completed)


# ---------------------------------------------------------------------------
# Stats-stage shards
# ---------------------------------------------------------------------------


def _stats_jobs(
    work: Sequence[tuple[str, Table, list[CandidateInsight]]],
    chunk_size: int,
) -> list[tuple[str, str, list[CandidateInsight]]]:
    """``(shard_id, attribute, chunk)`` jobs; ids are stable across runs."""
    jobs = []
    for attribute, _, candidates in work:
        for index, chunk in enumerate(family_chunks(candidates, chunk_size)):
            jobs.append((f"{attribute}#{index}", attribute, chunk))
    return jobs


def stats_shard_ids(
    work: Sequence[tuple[str, Table, list[CandidateInsight]]],
    chunk_size: int,
) -> list[str]:
    """The shard ids a run over ``work`` would produce (resume planning)."""
    return [shard_id for shard_id, _, _ in _stats_jobs(work, chunk_size)]


def _stats_worker_init(payload):
    """Resolve the shipped per-attribute sources into tables.

    Under the shared-memory plane each source is a compact
    :class:`~repro.relational.store.TableHandle`; attaching is zero-copy
    and counted (``parallel.shm_attach``).  Under the heap plane the
    sources are the pickled tables themselves.
    """
    sources, config = payload
    return (
        {name: resolve_table(source) for name, source in sources.items()},
        config,
    )


def _stats_task(ctx: WorkerContext, payload) -> tuple[list, list]:
    tables, config = ctx.state
    _, attribute, chunk = payload
    return run_attribute_chunk(
        tables[attribute], attribute, chunk, config, checkpoint=ctx.checkpoint
    )


def _exportable(parallel: ParallelConfig) -> bool:
    """Whether this run should ship handles instead of tables."""
    return (
        parallel.active
        and parallel.backend == "processes"
        and resolve_store_kind(parallel) == "shm"
    )


def run_stats_shards(
    work: Sequence[tuple[str, Table, list[CandidateInsight]]],
    config: SignificanceConfig,
    parallel: ParallelConfig,
    deadline: Deadline | None = None,
    store: ShardStore | None = None,
    raw_out: dict[str, tuple[list, list]] | None = None,
) -> list[TestedInsight]:
    """Test every attribute's candidates across the shard pool.

    Returns the tested insights in the exact order the sequential path
    produces them: attributes in ``work`` order, candidates in enumeration
    order, BH applied per attribute family over the merged chunks.

    When ``raw_out`` is given it receives, per attribute, the merged raw
    ``(oriented, results)`` sequences *before* the BH correction — the
    incremental stats stage memoizes these per pair family.
    """
    jobs = _stats_jobs(work, parallel.chunk_size)
    tables = {attribute: sample for attribute, sample, _ in work}
    # Under the shm plane workers receive handles (a table already shared
    # — e.g. the session's resident table — reuses its segment; sampled
    # tables are shared for the duration of this run).  Under the heap
    # plane the tables ship pickled, once per worker; per-attribute
    # samples typically alias one object, deduplicated either way.
    sources: dict[str, object] = tables
    owned: list = []
    if _exportable(parallel):
        by_identity: dict[int, object] = {}
        sources = {}
        for attribute, sample in tables.items():
            payload = by_identity.get(id(sample))
            if payload is None:
                payload, owned_store = export_table(sample, "shm")
                by_identity[id(sample)] = payload
                if owned_store is not None:
                    owned.append(owned_store)
            sources[attribute] = payload
    pool = ShardPool(
        parallel,
        task_fn=_stats_task,
        worker_init=_stats_worker_init,
        init_payload=(sources, config),
        label="stats",
        deadline=deadline,
    )

    skip: set[int] = set()
    restored: dict[int, tuple[list, list]] = {}
    on_result = None
    if store is not None:
        for index, (shard_id, _, _) in enumerate(jobs):
            cached = store.get(shard_id)
            if cached is not None:
                skip.add(index)
                restored[index] = cached
        if skip:
            logger.info("stats: resuming with %d/%d shard(s) from checkpoint",
                        len(skip), len(jobs))

        def on_result(index: int, value) -> None:
            oriented, results = value
            store.put(jobs[index][0], oriented, results)

    try:
        outputs = pool.run(jobs, on_result=on_result, skip=frozenset(skip))
    finally:
        for owned_store in owned:
            owned_store.release()
    for index, cached in restored.items():
        outputs[index] = cached

    merged: dict[str, tuple[list, list]] = {
        attribute: ([], []) for attribute, _, _ in work
    }
    for (shard_id, attribute, _), (oriented, results) in zip(jobs, outputs):
        merged[attribute][0].extend(oriented)
        merged[attribute][1].extend(results)
    if raw_out is not None:
        raw_out.update(merged)
    tested: list[TestedInsight] = []
    for attribute, _, _ in work:
        oriented, results = merged[attribute]
        tested.extend(finalize_attribute(oriented, results, config))
    return tested


# ---------------------------------------------------------------------------
# Support-stage shards
# ---------------------------------------------------------------------------


def evidence_supported(
    result: ComparisonResult, evidence: InsightEvidence, lo: str
) -> bool:
    """Support check with orientation: ``x`` is the lo-side series."""
    itype = insight_type(evidence.insight.candidate.type_code)
    if result.n_groups == 0:
        return False
    if evidence.insight.candidate.val == lo:
        return itype.supports(result.x, result.y)
    return itype.supports(result.y, result.x)


class _SupportWorkerState:
    """Per-worker evaluation state: own backend, own evaluator."""

    def __init__(self, table, backend_name, evaluator_name, memory_budget,
                 groups, valid_groupings, aggregates, mqo=None):
        # Imported here, not at module top: repro.parallel must stay
        # importable without touching repro.generation (which imports
        # repro.parallel.config for its own configuration).
        from repro.backend import create_backend

        # create_backend resolves a TableHandle into a zero-copy view.
        self.backend = create_backend(backend_name, table)
        self.evaluator_name = evaluator_name
        self.memory_budget = memory_budget
        self.groups = groups
        self.valid_groupings = valid_groupings
        self.aggregates = aggregates
        self.mqo = mqo
        self.refresh()

    def refresh(self) -> None:
        """Per-stage reset when the fleet reuses this state.

        The backend — its connection, attached segment views, and the
        table's cross-stage :class:`~repro.relational.aggcache
        .AggregateCache` — stays warm; only the cheap evaluator wrapper
        is rebuilt, so a repeat run re-requests its pair aggregates and
        records ``cache.aggregate_hits`` exactly as a ``workers=1`` rerun
        over the resident table does.
        """
        from repro.generation.evaluators import build_evaluator

        self.evaluator = build_evaluator(
            self.backend, self.evaluator_name, self.memory_budget, mqo=self.mqo
        )

    def close(self) -> None:
        self.backend.close()


def _support_worker_init(payload) -> _SupportWorkerState:
    return _SupportWorkerState(*payload)


def _support_task(ctx: WorkerContext, grouping: str):
    """Evaluate every (pair group × ``grouping`` × aggregate) combination.

    Returns compact records — ``(group_index, agg, tuples_aggregated,
    n_groups, supported member indices)`` for combinations that supported
    at least one member — plus this shard's aggregation-query and
    backend-statement counts.
    """
    state: _SupportWorkerState = ctx.state
    queries_before = state.evaluator.queries_sent
    statements_before = state.backend.statements_executed
    records = []
    # Plan this shard's full pair demand up front: one batched backend
    # call per grouping attribute (the multi-query optimization), instead
    # of one lazy materialization per (grouping, selection) pair inside
    # the evaluate loop.  A no-op for non-batching evaluators or mqo=off.
    shard_pairs = [
        frozenset((grouping, key[0]))
        for key, _ in state.groups
        if grouping in state.valid_groupings[key[0]]
    ]
    state.evaluator.plan(shard_pairs)
    with obs.span("generation.evaluate_grouping", grouping=grouping) as sp:
        evaluated = 0
        for group_index, (key, members) in enumerate(state.groups):
            attribute, lo, hi, measure_name = key
            if grouping not in state.valid_groupings[attribute]:
                continue
            for agg in state.aggregates:
                if ctx.checkpoint is not None:
                    ctx.checkpoint()
                query = ComparisonQuery(grouping, attribute, lo, hi, measure_name, agg)
                result = state.evaluator.evaluate(query)
                evaluated += 1
                supported = tuple(
                    i for i, evidence in enumerate(members)
                    if evidence_supported(result, evidence, lo)
                )
                if supported:
                    records.append(
                        (group_index, agg, result.tuples_aggregated,
                         result.n_groups, supported)
                    )
        sp.set(evaluated=evaluated, supported=len(records))
    return (
        records,
        state.evaluator.queries_sent - queries_before,
        state.backend.statements_executed - statements_before,
    )


def run_support_shards(
    table: Table,
    groups: list[tuple[tuple, list[InsightEvidence]]],
    valid_groupings: dict[str, list[str]],
    aggregates: Sequence[str],
    *,
    backend_name: str,
    evaluator_name: str,
    memory_budget: int | None,
    parallel: ParallelConfig,
    deadline: Deadline | None = None,
    mqo: bool | None = None,
) -> tuple[dict[tuple[int, str, str], tuple[int, int, tuple[int, ...]]], int, int]:
    """Evaluate the hypothesis stage sharded by grouping attribute.

    Returns ``(records, queries_sent, statements_executed)`` where
    ``records`` maps ``(group_index, grouping, agg)`` to ``(tuples_aggregated,
    n_groups, supported member indices)``.  The caller replays the
    sequential iteration order over this mapping to assemble the supported
    queries byte-identically.
    """
    shard_groupings = sorted({g for gs in valid_groupings.values() for g in gs})
    # Ship the table's handle when the shm plane is on (a session's
    # resident table is already shared, costing nothing extra here).
    source: object = table
    owned_store = None
    if _exportable(parallel):
        source, owned_store = export_table(table, "shm")
    pool = ShardPool(
        parallel,
        task_fn=_support_task,
        worker_init=_support_worker_init,
        init_payload=(source, backend_name, evaluator_name, memory_budget,
                      groups, valid_groupings, list(aggregates), mqo),
        label="support",
        deadline=deadline,
    )
    try:
        outputs = pool.run(shard_groupings)
    finally:
        if owned_store is not None:
            owned_store.release()
    records: dict[tuple[int, str, str], tuple[int, int, tuple[int, ...]]] = {}
    queries_sent = 0
    statements = 0
    for grouping, output in zip(shard_groupings, outputs):
        shard_records, shard_queries, shard_statements = output
        queries_sent += shard_queries
        statements += shard_statements
        for group_index, agg, tuples_aggregated, n_groups, supported in shard_records:
            records[(group_index, grouping, agg)] = (
                tuples_aggregated, n_groups, supported
            )
    return records, queries_sent, statements
