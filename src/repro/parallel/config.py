"""Configuration of the sharded multiprocess execution layer.

:class:`ParallelConfig` is the single knob surface for the process-pool
layer (:mod:`repro.parallel.pool`): how many workers, which pool flavour,
how failures are absorbed, and how shards are cut.  It is embedded in
:class:`~repro.generation.config.GenerationConfig` (``parallel=``) and in
the top-level :class:`~repro.config.ReproConfig`, and surfaces on the CLI
as ``repro generate --workers N``.

Determinism contract: worker count and scheduling **never** change
results.  Shards are cut at pair-family boundaries
(:func:`~repro.insights.significance.family_chunks`) and every permutation
batch derives its RNG from the root seed and the shard-independent batch
key (:mod:`repro.stats.rng`), so a 4-worker run is bit-identical to a
sequential one; the pool merely reassembles shard results in canonical
order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "PARALLEL_BACKEND_NAMES",
    "SHM_ENV_VAR",
    "STORE_NAMES",
    "WORKERS_ENV_VAR",
    "ParallelConfig",
    "default_store",
    "default_workers",
    "resolve_store_kind",
    "store_from_env_value",
]

#: Pool flavours: ``processes`` (the sharded pool; beats the GIL) and
#: ``threads`` (shared-memory pool; useful when the workload releases the
#: GIL or the data is too large to ship to subprocesses).
PARALLEL_BACKEND_NAMES: tuple[str, ...] = ("processes", "threads")

#: Environment variable holding the default worker count (CI matrix hook,
#: mirroring ``REPRO_BACKEND`` and ``REPRO_STATS_KERNEL``).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Column-store planes for the data shipped to workers: ``auto`` picks
#: shared memory whenever a process pool would actually run and the
#: platform supports it, ``heap`` forces the pickling plane, ``shm``
#: forces shared memory (degrading to heap only where shm is physically
#: unavailable).
STORE_NAMES: tuple[str, ...] = ("auto", "heap", "shm")

#: Environment variable selecting the store plane (CI matrix hook):
#: ``0``/``heap``, ``1``/``shm``, or ``auto`` (the default).
SHM_ENV_VAR = "REPRO_SHM"


def store_from_env_value(raw: str) -> str:
    """Translate a ``REPRO_SHM`` value into a store name."""
    value = raw.strip()
    if not value:
        return "auto"
    if value == "0":
        return "heap"
    if value == "1":
        return "shm"
    if value in STORE_NAMES:
        return value
    raise ReproError(
        f"{SHM_ENV_VAR}={raw!r} must be one of 0, 1, auto, heap, shm"
    )


def default_store() -> str:
    """The process-wide default store plane: ``$REPRO_SHM`` or ``auto``."""
    return store_from_env_value(os.environ.get(SHM_ENV_VAR, ""))


def default_workers() -> int:
    """The process-wide default worker count: ``$REPRO_WORKERS`` or 1.

    An invalid environment value raises immediately rather than silently
    running sequentially (the CI matrix relies on this).
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ReproError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer worker count"
        ) from None
    if workers < 1:
        raise ReproError(f"{WORKERS_ENV_VAR} must be at least 1, got {workers}")
    return workers


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """Settings of the sharded execution layer.

    Attributes
    ----------
    workers:
        Worker count for the stats and hypothesis-evaluation stages.  The
        default honours the ``REPRO_WORKERS`` environment variable; 1 runs
        everything in-process (no pool is ever created).
    backend:
        ``"processes"`` (default) — the work-stealing subprocess pool of
        :mod:`repro.parallel.pool`; ``"threads"`` — a shared-memory thread
        pool (the pre-existing GIL-bound path, kept for workloads where
        shipping data to subprocesses costs more than it saves).
    max_worker_restarts:
        Crashed workers are replaced up to this many times per pool before
        the pool stops replacing them and the remaining shards run
        in-process (the crash-isolation ladder; see docs/parallelism.md).
    chunk_size:
        Target candidates per stats shard.  Shards are cut only at
        pair-family boundaries so the batched kernel sees whole families
        per worker; the exact value never affects results, only balance.
    store:
        Which data plane carries the table to workers: ``"auto"``
        (shared memory when a process pool runs and the platform has
        it), ``"heap"`` (pickle the table — the pre-8.x plane), or
        ``"shm"`` (force shared memory).  Never affects results, only
        how bytes move; see :func:`resolve_store_kind`.
    ipc_block_size:
        Upper bound on tasks batched into one pool submission.  Blocks
        amortize queue round-trips without starving the work-stealing
        scheduler; like ``chunk_size`` this never affects results.
    deadline_margin:
        Seconds of remaining deadline below which the pool stops
        dispatching to workers and finishes in-process, where the
        cooperative :class:`~repro.runtime.deadline.Deadline` checkpoints
        can fire and the runtime ladder can degrade the stage.
    """

    workers: int = field(default_factory=default_workers)
    backend: str = "processes"
    max_worker_restarts: int = 1
    chunk_size: int = 250
    deadline_margin: float = 1.0
    store: str = field(default_factory=default_store)
    ipc_block_size: int = 4

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be at least 1, got {self.workers}")
        if self.backend not in PARALLEL_BACKEND_NAMES:
            raise ReproError(
                f"unknown parallel backend {self.backend!r}; "
                f"known: {PARALLEL_BACKEND_NAMES}"
            )
        if self.max_worker_restarts < 0:
            raise ReproError("max_worker_restarts cannot be negative")
        if self.chunk_size < 1:
            raise ReproError("chunk_size must be at least 1")
        if self.deadline_margin < 0:
            raise ReproError("deadline_margin cannot be negative")
        if self.store not in STORE_NAMES:
            raise ReproError(
                f"unknown column store {self.store!r}; known: {STORE_NAMES}"
            )
        if self.ipc_block_size < 1:
            raise ReproError("ipc_block_size must be at least 1")

    @property
    def active(self) -> bool:
        """True when a pool would actually be used (more than one worker)."""
        return self.workers > 1

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "backend": self.backend,
            "max_worker_restarts": self.max_worker_restarts,
            "chunk_size": self.chunk_size,
            "deadline_margin": self.deadline_margin,
            "store": self.store,
            "ipc_block_size": self.ipc_block_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParallelConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - explicit
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown ParallelConfig keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)


def resolve_store_kind(parallel: ParallelConfig) -> str:
    """The concrete data plane a run under ``parallel`` uses.

    ``heap`` and ``shm`` are honoured directly (``shm`` still degrades
    to heap where shared memory is physically unavailable — the paper's
    pipeline must run anywhere); ``auto`` picks shared memory exactly
    when a subprocess pool would carry the data.
    """
    from repro.relational.store import shm_available

    if parallel.store == "heap":
        return "heap"
    if parallel.store == "shm":
        return "shm" if shm_available() else "heap"
    if parallel.active and parallel.backend == "processes" and shm_available():
        return "shm"
    return "heap"
