"""Configuration of the sharded multiprocess execution layer.

:class:`ParallelConfig` is the single knob surface for the process-pool
layer (:mod:`repro.parallel.pool`): how many workers, which pool flavour,
how failures are absorbed, and how shards are cut.  It is embedded in
:class:`~repro.generation.config.GenerationConfig` (``parallel=``) and in
the top-level :class:`~repro.config.ReproConfig`, and surfaces on the CLI
as ``repro generate --workers N``.

Determinism contract: worker count and scheduling **never** change
results.  Shards are cut at pair-family boundaries
(:func:`~repro.insights.significance.family_chunks`) and every permutation
batch derives its RNG from the root seed and the shard-independent batch
key (:mod:`repro.stats.rng`), so a 4-worker run is bit-identical to a
sequential one; the pool merely reassembles shard results in canonical
order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "PARALLEL_BACKEND_NAMES",
    "WORKERS_ENV_VAR",
    "ParallelConfig",
    "default_workers",
]

#: Pool flavours: ``processes`` (the sharded pool; beats the GIL) and
#: ``threads`` (shared-memory pool; useful when the workload releases the
#: GIL or the data is too large to ship to subprocesses).
PARALLEL_BACKEND_NAMES: tuple[str, ...] = ("processes", "threads")

#: Environment variable holding the default worker count (CI matrix hook,
#: mirroring ``REPRO_BACKEND`` and ``REPRO_STATS_KERNEL``).
WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_workers() -> int:
    """The process-wide default worker count: ``$REPRO_WORKERS`` or 1.

    An invalid environment value raises immediately rather than silently
    running sequentially (the CI matrix relies on this).
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ReproError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer worker count"
        ) from None
    if workers < 1:
        raise ReproError(f"{WORKERS_ENV_VAR} must be at least 1, got {workers}")
    return workers


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """Settings of the sharded execution layer.

    Attributes
    ----------
    workers:
        Worker count for the stats and hypothesis-evaluation stages.  The
        default honours the ``REPRO_WORKERS`` environment variable; 1 runs
        everything in-process (no pool is ever created).
    backend:
        ``"processes"`` (default) — the work-stealing subprocess pool of
        :mod:`repro.parallel.pool`; ``"threads"`` — a shared-memory thread
        pool (the pre-existing GIL-bound path, kept for workloads where
        shipping data to subprocesses costs more than it saves).
    max_worker_restarts:
        Crashed workers are replaced up to this many times per pool before
        the pool stops replacing them and the remaining shards run
        in-process (the crash-isolation ladder; see docs/parallelism.md).
    chunk_size:
        Target candidates per stats shard.  Shards are cut only at
        pair-family boundaries so the batched kernel sees whole families
        per worker; the exact value never affects results, only balance.
    deadline_margin:
        Seconds of remaining deadline below which the pool stops
        dispatching to workers and finishes in-process, where the
        cooperative :class:`~repro.runtime.deadline.Deadline` checkpoints
        can fire and the runtime ladder can degrade the stage.
    """

    workers: int = field(default_factory=default_workers)
    backend: str = "processes"
    max_worker_restarts: int = 1
    chunk_size: int = 250
    deadline_margin: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be at least 1, got {self.workers}")
        if self.backend not in PARALLEL_BACKEND_NAMES:
            raise ReproError(
                f"unknown parallel backend {self.backend!r}; "
                f"known: {PARALLEL_BACKEND_NAMES}"
            )
        if self.max_worker_restarts < 0:
            raise ReproError("max_worker_restarts cannot be negative")
        if self.chunk_size < 1:
            raise ReproError("chunk_size must be at least 1")
        if self.deadline_margin < 0:
            raise ReproError("deadline_margin cannot be negative")

    @property
    def active(self) -> bool:
        """True when a pool would actually be used (more than one worker)."""
        return self.workers > 1

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "backend": self.backend,
            "max_worker_restarts": self.max_worker_restarts,
            "chunk_size": self.chunk_size,
            "deadline_margin": self.deadline_margin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParallelConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - explicit
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown ParallelConfig keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)
