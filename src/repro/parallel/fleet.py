"""Long-lived worker fleets: spawn once per session, serve many stages.

Before PR 8 every ``ShardPool.run`` forked a fresh set of workers and
shipped the whole init payload (usually the dataset) into each of them —
twice per run (stats, then support), per request in the serving layer.
A :class:`WorkerFleet` decouples worker lifetime from stage lifetime:

* **one spawn, many stages** — :class:`~repro.parallel.pool.ShardPool`
  picks up the ambient fleet (:func:`use_fleet` / :func:`current_fleet`,
  installed by ``api.Session`` for the duration of a run) and only
  creates a private, ephemeral fleet when none is ambient;
* **epoch protocol** — each scheduler run claims a fresh epoch.  Setup
  and block messages carry it; a shared cancellation watermark
  (``Value``) cancels everything at or below an epoch without poisoning
  the next stage, and stale results are dropped by epoch in the parent;
* **block IPC** — tasks travel in small blocks
  (:attr:`~repro.parallel.config.ParallelConfig.ipc_block_size`) instead
  of one queue round-trip per task;
* **warm stage states** — workers cache built stage states keyed by the
  init blob's digest, so a repeat of the same stage (the next request
  against a warm serving session, a replacement worker rejoining)
  reuses attached segments, backend connections, and aggregate caches
  instead of rebuilding them;
* **exact byte accounting** — every message is pickled *by this module*
  and crosses the queues as raw bytes, so ``parallel.ipc_bytes`` counts
  precisely what the data plane pays.  This is the counter the
  data-plane benchmark asserts its ≥10x shrink against.

The fleet is deliberately generic: it knows nothing about tables or
handles.  Zero-copy comes from what the *payloads* are — a
:class:`~repro.relational.store.TableHandle` instead of a pickled table.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing as mp
import os
import pickle
import queue as queue_mod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro import obs
from repro.errors import DeadlineExceeded
from repro.runtime.deadline import Deadline

logger = logging.getLogger(__name__)

__all__ = ["WorkerContext", "WorkerFleet", "current_fleet", "use_fleet"]


#: Exit code of a worker killed by the ``parallel.worker`` fault point,
#: distinguishable from real crashes in logs.
_INJECTED_EXIT = 17

#: How many distinct stage states a worker keeps warm.  A session's run
#: alternates between two stages (stats, support); serving adds one
#: distinct pair per warm dataset this worker sees.  Evicted states are
#: closed.
_STATE_CACHE_SIZE = 4


def _maybe_injected_worker_kill(guard_dir: str | None,
                                result_queue=None) -> None:
    """Honor ``REPRO_FAULTS=parallel.worker:kill[:xN]`` inside a worker.

    The guard directory is the cross-process fault budget: each planned
    kill claims one marker file with ``O_CREAT|O_EXCL`` before dying, so
    N planned kills crash exactly N task attempts across the whole fleet
    — replacement workers and requeued shards included — regardless of
    which worker dequeues them.

    The result queue is drained before dying: its feeder thread writes
    under a lock shared with every other worker, and ``os._exit`` while
    that lock is held would poison it fleet-wide.  A planned kill models
    a crash *between* tasks, so flushing first keeps the simulated
    failure inside the scheduler's recovery contract.
    """

    def _exit() -> None:
        if result_queue is not None:
            result_queue.close()
            result_queue.join_thread()
        os._exit(_INJECTED_EXIT)
    plan = os.environ.get("REPRO_FAULTS", "")
    if "parallel.worker" not in plan or guard_dir is None:
        return
    from repro.runtime.faults import parse_fault_plan

    for spec in parse_fault_plan(plan).specs:
        if spec.stage != "parallel.worker" or spec.action != "kill":
            continue
        if spec.times is None:
            _exit()
        for shot in range(spec.times):
            try:
                fd = os.open(os.path.join(guard_dir, f"kill-{shot}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            _exit()


@dataclass(slots=True)
class WorkerContext:
    """What a shard function sees as its first argument.

    ``state`` is whatever ``worker_init`` built once for this worker and
    stage (for the evaluation stage: its own backend — SQLite connections
    never cross process boundaries).  ``checkpoint`` is the cooperative
    cancellation hook: it raises :class:`DeadlineExceeded` past the
    stage's deadline or when the parent cancelled the epoch, and is cheap
    enough to call as often as the permutation kernel calls its slice
    checkpoint.  In the in-process fallback path, ``state`` comes from
    the same ``worker_init`` and ``checkpoint`` wraps the *real* run
    deadline.
    """

    state: Any
    checkpoint: Callable[[], None] | None


def _pool_context() -> mp.context.BaseContext:
    """Fork where available (cheap, shares the dataset pages); else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _make_worker_checkpoint(cancel_value, epoch: int,
                            deadline: Deadline | None, label: str):
    def checkpoint() -> None:
        if cancel_value.value >= epoch:
            raise DeadlineExceeded(
                f"{label}: cancelled by the pool scheduler", stage=label
            )
        if deadline is not None:
            deadline.check(label)

    return checkpoint


def _close_state(state: Any) -> None:
    close = getattr(state, "close", None)
    if callable(close):
        close()


class _Stage:
    """A worker's view of the stage it was last set up for."""

    __slots__ = ("epoch", "task_fn", "context", "fault_guard")

    def __init__(self, epoch, task_fn, context, fault_guard):
        self.epoch = epoch
        self.task_fn = task_fn
        self.context = context
        self.fault_guard = fault_guard


def _fleet_worker_main(worker_id: int, task_queue, result_queue,
                       cancel_value) -> None:
    """Worker loop: serve stage setups and task blocks until ``None``.

    Messages arrive and leave as pre-pickled bytes (the parent counts
    them).  A setup message carries the stage's init blob; its digest
    keys a small cache of built states, so the same stage arriving again
    — the next run of a warm serving session, a replacement worker
    rejoining — reuses the existing state (attached segments, backend
    connections, warm aggregate caches) instead of re-running the init.
    Setup is acknowledged with a ``ready`` message carrying the init's
    spans and metrics (a shared-memory attach happens *here*, so its
    ``parallel.shm_attach`` count ships with the ack; a cache hit attaches
    nothing).  Each task in a block runs under a fresh tracer/metrics
    capture so the parent can adopt one ``parallel.task`` subtree per
    task; a block stops at its first failure.
    """
    stage: _Stage | None = None
    # blob digest -> (task_fn, state); insertion-ordered, refreshed on
    # hit, so eviction drops the least recently *set up* stage — never
    # the one the live stage points at.
    states: dict[bytes, tuple[Any, Any]] = {}

    def ship(message: tuple) -> None:
        result_queue.put(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))

    try:
        while True:
            raw = task_queue.get()
            if raw is None:
                break
            message = pickle.loads(raw)
            if message[0] == "drop_states":
                # The session's dataset changed (rows appended): every warm
                # stage state is keyed by an init blob naming the *old*
                # table, so none can ever be hit again — close them now
                # instead of waiting for cache-size eviction.
                for _, state in states.values():
                    _close_state(state)
                states.clear()
                stage = None
                continue
            if message[0] == "setup":
                (_, epoch, init_blob, deadline_remaining,
                 label, fault_guard) = message
                stage = None
                deadline = (Deadline(max(1e-3, deadline_remaining))
                            if deadline_remaining is not None else None)
                checkpoint = _make_worker_checkpoint(
                    cancel_value, epoch, deadline, label
                )
                digest = hashlib.blake2s(init_blob).digest()
                with obs.capture() as (tracer, metrics):
                    try:
                        if digest in states:
                            states[digest] = states.pop(digest)  # recency
                            task_fn, state = states[digest]
                            # Per-stage reset hook: a reused state keeps
                            # its expensive parts (attached segments,
                            # connections, the table's aggregate cache)
                            # and rebuilds the per-stage ones, matching
                            # what a fresh worker_init over warm memory
                            # would produce.
                            reset = getattr(state, "refresh", None)
                            if callable(reset):
                                reset()
                        else:
                            task_fn, worker_init, init_payload = pickle.loads(
                                init_blob
                            )
                            state = (worker_init(init_payload)
                                     if worker_init is not None
                                     else init_payload)
                            states[digest] = (task_fn, state)
                            while len(states) > _STATE_CACHE_SIZE:
                                _, stale = states.pop(next(iter(states)))
                                _close_state(stale)
                        ok, detail = True, None
                    except BaseException as exc:  # noqa: BLE001 - shipped back
                        ok, detail = False, (type(exc).__name__, str(exc))
                if ok:
                    stage = _Stage(
                        epoch, task_fn, WorkerContext(state, checkpoint),
                        fault_guard,
                    )
                ship(("ready", worker_id, epoch, ok, detail,
                      tracer.export(), metrics.export()))
            else:  # ("block", epoch, block_index, entries)
                _, epoch, block_index, entries = message
                if (stage is None or stage.epoch != epoch
                        or cancel_value.value >= epoch):
                    continue  # stale dispatch from a cancelled stage
                outputs = []
                for task_id, payload in entries:
                    _maybe_injected_worker_kill(stage.fault_guard, result_queue)
                    with obs.capture() as (tracer, metrics):
                        try:
                            value = stage.task_fn(stage.context, payload)
                            ok = True
                        except BaseException as exc:  # noqa: BLE001 - shipped
                            value = (type(exc).__name__, str(exc))
                            ok = False
                    outputs.append(
                        (task_id, ok, value, tracer.export(), metrics.export())
                    )
                    if not ok:
                        break
                ship(("results", worker_id, epoch, block_index, outputs))
    finally:
        for _, state in states.values():
            _close_state(state)


class WorkerFleet:
    """A set of subprocess workers that outlives any single stage.

    The fleet owns the processes, their queues, and the shared
    cancellation watermark; :class:`~repro.parallel.pool._Scheduler`
    borrows workers per stage via :meth:`ensure` and talks to them
    through :meth:`send`/:meth:`recv`, which count every byte into
    ``parallel.ipc_bytes``.  Close with :meth:`close` (idempotent) or use
    it as a context manager.
    """

    def __init__(self, context: mp.context.BaseContext | None = None):
        self._ctx = context or _pool_context()
        self._results = self._ctx.Queue()
        self._cancel = self._ctx.Value("l", 0)
        self._workers: dict[int, tuple] = {}  # id -> (process, task_queue)
        self._next_worker_id = 0
        self._epoch = 0
        self.closed = False

    # -- epochs and cancellation --------------------------------------------

    def next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    def cancel(self, epoch: int) -> None:
        """Cancel every stage at or below ``epoch`` (monotonic watermark)."""
        with self._cancel.get_lock():
            if self._cancel.value < epoch:
                self._cancel.value = epoch

    # -- worker lifecycle ----------------------------------------------------

    def spawn(self) -> int:
        """Start one worker; returns its fleet-wide id."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(worker_id, task_queue, self._results, self._cancel),
            daemon=True,
            name=f"repro-fleet-{worker_id}",
        )
        process.start()
        self._workers[worker_id] = (process, task_queue)
        obs.counter("parallel.worker_spawns").inc()
        return worker_id

    def ensure(self, count: int) -> list[int]:
        """At least ``count`` live workers; returns ``count`` of their ids.

        This is the amortization point: a fleet that already served a
        stage hands back its warm workers instead of forking new ones.
        """
        for worker_id in [wid for wid, (process, _) in self._workers.items()
                          if not process.is_alive()]:
            self.discard(worker_id)
        while len(self._workers) < count:
            self.spawn()
        return sorted(self._workers)[:count]

    def alive(self, worker_id: int) -> bool:
        entry = self._workers.get(worker_id)
        return entry is not None and entry[0].is_alive()

    def discard(self, worker_id: int):
        """Forget a (dead) worker; returns its exit code for diagnostics."""
        process, _ = self._workers.pop(worker_id)
        return process.exitcode

    def refresh(self) -> None:
        """Tell every live worker to drop its warm stage states.

        Called after the owning session's table version advances: the
        cached states reference the superseded table (and, under the shm
        plane, hold attached views of its segment), and their digest keys
        can never match again.  The broadcast is fire-and-forget — each
        worker's task queue is serial, so the drop lands before any
        subsequent stage setup.
        """
        if self.closed:
            return
        for worker_id, (process, _) in list(self._workers.items()):
            if process.is_alive():
                self.send(worker_id, ("drop_states",))
        obs.counter("parallel.fleet_refreshes").inc()

    # -- the byte-counted wire ----------------------------------------------

    def send(self, worker_id: int, message: tuple) -> None:
        raw = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        obs.counter("parallel.ipc_bytes").inc(len(raw))
        self._workers[worker_id][1].put(raw)

    def recv(self, timeout: float):
        """Next worker message, or ``None`` on timeout."""
        try:
            raw = self._results.get(timeout=timeout)
        except queue_mod.Empty:
            return None
        obs.counter("parallel.ipc_bytes").inc(len(raw))
        return pickle.loads(raw)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        for _, task_queue in self._workers.values():
            try:
                task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - dying worker
                pass
        for process, _ in self._workers.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._workers.clear()

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: The ambient fleet, installed by ``api.Session`` around each run.  Like
#: the ambient tracer/metrics (:func:`repro.obs.use`) this is module
#: state, not thread-local — safe because every run serializes on the
#: process-wide run lock.
_ambient_fleet: WorkerFleet | None = None


def current_fleet() -> WorkerFleet | None:
    """The ambient fleet, if one is installed and still open."""
    if _ambient_fleet is not None and not _ambient_fleet.closed:
        return _ambient_fleet
    return None


@contextmanager
def use_fleet(fleet: WorkerFleet) -> Iterator[None]:
    """Make ``fleet`` ambient so every pool in scope amortizes onto it."""
    global _ambient_fleet
    previous = _ambient_fleet
    _ambient_fleet = fleet
    try:
        yield
    finally:
        _ambient_fleet = previous
