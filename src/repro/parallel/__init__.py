"""repro.parallel — sharded multiprocess execution of the pipeline.

The two expensive stages (permutation testing, hypothesis-query
evaluation) shard across a crash-isolated, work-stealing subprocess pool
while staying bit-identical to sequential execution at any worker count.
Configure through :class:`ParallelConfig` (``GenerationConfig(parallel=...)``,
``ReproConfig.parallel``, or ``repro generate --workers N``); the sharding
model and failure semantics are documented in ``docs/parallelism.md``.
"""

from repro.parallel.config import (
    PARALLEL_BACKEND_NAMES,
    SHM_ENV_VAR,
    STORE_NAMES,
    WORKERS_ENV_VAR,
    ParallelConfig,
    default_store,
    default_workers,
    resolve_store_kind,
)
from repro.parallel.fleet import WorkerFleet, current_fleet, use_fleet
from repro.parallel.pool import ShardPool, WorkerContext, WorkerCrashed
from repro.parallel.shards import (
    ShardStore,
    run_stats_shards,
    run_support_shards,
)

__all__ = [
    "PARALLEL_BACKEND_NAMES",
    "SHM_ENV_VAR",
    "STORE_NAMES",
    "WORKERS_ENV_VAR",
    "ParallelConfig",
    "ShardPool",
    "ShardStore",
    "WorkerContext",
    "WorkerCrashed",
    "WorkerFleet",
    "current_fleet",
    "default_store",
    "default_workers",
    "resolve_store_kind",
    "run_stats_shards",
    "run_support_shards",
    "use_fleet",
]
