"""A crash-isolated, work-stealing shard scheduler over a worker fleet.

The pipeline is embarrassingly parallel at two choke points — permutation
testing per pair-family shard and hypothesis-query evaluation per grouping
attribute — but both need more than ``ProcessPoolExecutor.map`` offers:

* **amortized workers** — workers live in a
  :class:`~repro.parallel.fleet.WorkerFleet` that outlives any single
  stage: a :class:`ShardPool` borrows the ambient fleet (installed by
  ``api.Session`` for the whole run) and only spins up a private one when
  none is ambient, so a run's stats and support stages — and every
  request against a warm serving session — reuse the same processes
  (``parallel.worker_spawns`` stays flat);
* **block IPC with exact accounting** — tasks travel in small blocks and
  every message crosses the queues as counted bytes
  (``parallel.ipc_bytes``); with the shared-memory data plane
  (:mod:`repro.relational.store`) the per-stage payload is a
  :class:`~repro.relational.store.TableHandle`, not the dataset;
* **work stealing** — shard costs are wildly uneven (one large-domain
  attribute can hold 10x the candidates of the rest), so each worker owns
  a deque of blocks and an idle worker steals from the back of the longest
  remaining deque (``parallel.tasks_stolen`` counts the steals);
* **crash isolation** — a worker that dies (OOM killer, native crash) is
  replaced up to ``max_worker_restarts`` times and its in-flight block is
  re-queued; the replacement re-runs the stage setup, which under the shm
  plane re-attaches the existing segment instead of re-pickling the data.
  Past the restart budget the pool stops replacing workers and the
  remaining shards run *in-process*, where the cooperative
  :class:`~repro.runtime.deadline.Deadline` checkpoints can fire and the
  PR 1 runtime ladder can degrade the stage
  (``parallel.worker_restarts`` / ``parallel.tasks_inprocess``);
* **deadline awareness** — when the remaining deadline falls under
  ``deadline_margin`` the pool stops dispatching, cancels its epoch
  (checked between permutation-kernel slices), and finishes in-process so
  expiry surfaces as a normal :class:`~repro.errors.DeadlineExceeded` for
  the ladder to catch;
* **observability** — each task runs under an isolated tracer/registry in
  the worker; its span subtree is shipped back and re-parented into the
  main trace under a ``parallel.task`` span, and its counters merge into
  the ambient registry, so ``repro profile --workers 4`` shows one
  coherent tree.

Determinism: the pool only schedules.  Results are reassembled positionally
(``run`` returns them in payload order), so any worker count, block size,
and steal pattern produce identical output; the bit-identical-results
guarantee comes from the shards themselves (key-derived RNG substreams,
family-boundary chunking).
"""

from __future__ import annotations

import logging
import os
import pickle
import shutil
import tempfile
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import DeadlineExceeded, ReproError
from repro.parallel.config import ParallelConfig
from repro.parallel.fleet import (
    WorkerContext,
    WorkerFleet,
    current_fleet,
)
from repro.runtime.deadline import Deadline
from repro.runtime.retry import RetryPolicy, RetryState

logger = logging.getLogger(__name__)

__all__ = ["ShardPool", "WorkerContext", "WorkerCrashed"]

#: Seconds the scheduler waits on the result queue before checking worker
#: liveness and the deadline.
_POLL_SECONDS = 0.1

#: Backoff curve for replacing crashed workers.  A worker that dies the
#: instant it starts (bad node, OOM storm) would otherwise be respawned in
#: a tight fork loop; the shared retry primitive paces replacements with
#: deterministic jitter.  ``max_attempts`` is irrelevant here — the budget
#: comes from :attr:`ParallelConfig.max_worker_restarts`.
_RESTART_BACKOFF = RetryPolicy(base_delay=0.02, multiplier=2.0,
                               max_delay=0.25, jitter=0.5)


class WorkerCrashed(ReproError):
    """A pool worker died; carries the exit code for diagnostics."""


def _shipped_error(kind: str, detail: str, label: str) -> BaseException:
    """Rebuild a worker-side exception in the parent, type-mapped.

    Deadline expiry and memory pressure keep their types so the runtime
    ladder applies the right degradation; everything else surfaces as a
    :class:`ReproError` carrying the original type name.
    """
    if kind == "DeadlineExceeded":
        return DeadlineExceeded(f"{label}: {detail}", stage=label)
    if kind == "MemoryError":
        return MemoryError(f"{label}: {detail}")
    return ReproError(f"{label}: worker task failed ({kind}: {detail})")


class ShardPool:
    """Run shard payloads across crash-isolated workers, results in order.

    Parameters
    ----------
    parallel:
        The :class:`~repro.parallel.config.ParallelConfig` in force.
    task_fn:
        ``task_fn(ctx, payload) -> result``; must be a module-level
        function (it crosses the process boundary under spawn).
    worker_init:
        Optional per-stage constructor ``worker_init(init_payload) ->
        state``, run once per worker for each *distinct* stage payload:
        workers cache the built state keyed by the init blob's digest, so
        a repeat of the same stage (a warm serving session, a replacement
        worker rejoining) reuses it instead of rebuilding.  Build
        per-worker resources here — e.g. a backend with its own SQLite
        connection, or a zero-copy attach of a
        :class:`~repro.relational.store.TableHandle`.
    init_payload:
        Shipped once per worker per stage; becomes ``ctx.state`` directly
        when no ``worker_init`` is given.
    label:
        Span/log prefix (the pool span is ``parallel.<label>``).
    deadline:
        The run deadline.  The pool stops dispatching when
        ``deadline.remaining()`` falls under ``parallel.deadline_margin``
        and finishes in-process, where expiry raises normally.
    """

    def __init__(
        self,
        parallel: ParallelConfig,
        *,
        task_fn: Callable[[WorkerContext, Any], Any],
        worker_init: Callable[[Any], Any] | None = None,
        init_payload: Any = None,
        label: str = "shards",
        deadline: Deadline | None = None,
    ):
        self._parallel = parallel
        self._task_fn = task_fn
        self._worker_init = worker_init
        self._init_payload = init_payload
        self._label = label
        self._deadline = deadline

    # -- in-process execution (fallback and degradation path) ---------------

    def run_local(
        self,
        tasks: Sequence[tuple[int, Any]],
        results: list[Any],
        on_result: Callable[[int, Any], None] | None = None,
        *,
        count: bool = True,
    ) -> None:
        """Run ``(task_id, payload)`` pairs in the parent process.

        This is the degradation path: the checkpoint wraps the *real*
        deadline, so a :class:`DeadlineExceeded` raised here escapes to
        the runtime ladder exactly as sequential execution would — the
        pool never absorbs deadline expiry.
        """
        checkpoint = None
        if self._deadline is not None and self._deadline.limited:
            checkpoint = lambda: self._deadline.check(self._label)  # noqa: E731
        state = (
            self._worker_init(self._init_payload)
            if self._worker_init is not None
            else self._init_payload
        )
        context = WorkerContext(state=state, checkpoint=checkpoint)
        try:
            for task_id, payload in tasks:
                if checkpoint is not None:
                    checkpoint()
                results[task_id] = self._task_fn(context, payload)
                if count:
                    obs.counter("parallel.tasks_inprocess").inc()
                if on_result is not None:
                    on_result(task_id, results[task_id])
        finally:
            if self._worker_init is not None:
                close = getattr(state, "close", None)
                if callable(close):
                    close()

    # -- the scheduler -------------------------------------------------------

    def run(
        self,
        payloads: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
        skip: set[int] | frozenset[int] = frozenset(),
    ) -> list[Any]:
        """Execute every payload; return results in payload order.

        ``on_result(task_id, result)`` fires as each shard completes (in
        completion order — the mid-shard checkpoint hook).  ``skip`` holds
        task ids already satisfied by a resumed checkpoint; their result
        slots stay ``None`` for the caller to fill.  Worker-side Python
        exceptions re-raise in the parent type-mapped; worker *deaths* are
        absorbed up to the restart budget, then the pool degrades to
        in-process execution.
        """
        results: list[Any] = [None] * len(payloads)
        todo = [i for i in range(len(payloads)) if i not in skip]
        if not todo:
            return results
        n_workers = min(self._parallel.workers, len(todo))
        if n_workers <= 1 or self._deadline_near():
            self.run_local(
                [(i, payloads[i]) for i in todo], results, on_result,
                count=self._parallel.active,
            )
            return results

        fleet = current_fleet()
        ephemeral = fleet is None
        if ephemeral:
            fleet = WorkerFleet()
        try:
            with obs.span(
                f"parallel.{self._label}", workers=n_workers, tasks=len(todo)
            ) as pool_span:
                leftovers = _Scheduler(self, payloads, todo, results,
                                       on_result, n_workers, fleet).run()
                pool_span.set(pool_completed=len(todo) - len(leftovers))
        finally:
            if ephemeral:
                fleet.close()
        if leftovers:
            logger.warning(
                "%s: running %d remaining shard(s) in-process "
                "(deadline near or restart budget exhausted)",
                self._label, len(leftovers),
            )
            self.run_local(
                [(i, payloads[i]) for i in leftovers], results, on_result
            )
        return results

    def _deadline_near(self) -> bool:
        return (
            self._deadline is not None
            and self._deadline.limited
            and self._deadline.remaining() < self._parallel.deadline_margin
        )


class _Scheduler:
    """One ``ShardPool.run`` invocation's stage over a (borrowed) fleet."""

    def __init__(self, pool: ShardPool, payloads, todo, results,
                 on_result, n_workers: int, fleet: WorkerFleet):
        self._pool = pool
        self._payloads = payloads
        self._results = results
        self._on_result = on_result
        self._n_workers = n_workers
        self._fleet = fleet
        self._epoch = fleet.next_epoch()
        # Tasks travel in contiguous blocks (fewer queue round-trips);
        # capped so every worker still sees at least two blocks and the
        # stealing scheduler keeps something to steal.
        block_size = max(1, min(pool._parallel.ipc_block_size,
                                -(-len(todo) // (n_workers * 2))))
        self._blocks: list[list[int]] = [
            todo[i:i + block_size] for i in range(0, len(todo), block_size)
        ]
        # Contiguous block partition: a steal moves one block from the
        # tail of the fullest deque, preserving range locality.
        self._deques: list[deque] = [deque() for _ in range(n_workers)]
        for index in range(len(self._blocks)):
            self._deques[index * n_workers // len(self._blocks)].append(index)
        self._slots: dict[int, int] = {}  # worker id -> deque slot
        self._in_flight: dict[int, tuple[int, float]] = {}  # id -> (block, t)
        self._pending: set[int] = set(todo)
        self._restarts = RetryState(
            _RESTART_BACKOFF, retries=pool._parallel.max_worker_restarts
        )
        self._failure: BaseException | None = None
        # Cross-process budget for the parallel.worker fault point: a
        # shared directory of claim markers, one per planned kill.
        self._fault_guard: str | None = None
        if "parallel.worker" in os.environ.get("REPRO_FAULTS", ""):
            self._fault_guard = tempfile.mkdtemp(prefix="repro-worker-fault-")
        # The stage's identity on the wire: one pre-pickled blob of
        # (task_fn, worker_init, init_payload), built once per run and
        # shipped verbatim to every worker (and every replacement).
        # Workers key their state cache on its digest, so a repeat setup —
        # the second run against a warm serving session, a restarted
        # worker rejoining a stage — reuses the state it already built
        # (attached segments, backend connections, warm aggregate caches)
        # instead of re-running the init.
        self._init_blob = pickle.dumps(
            (pool._task_fn, pool._worker_init, pool._init_payload),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    # -- per-stage worker setup ---------------------------------------------

    def _setup(self, worker_id: int) -> None:
        pool = self._pool
        remaining = None
        if pool._deadline is not None and pool._deadline.limited:
            remaining = pool._deadline.remaining()
        self._fleet.send(worker_id, (
            "setup", self._epoch, self._init_blob, remaining,
            pool._label, self._fault_guard,
        ))

    def _dispatch(self, worker_id: int) -> None:
        """Send the next block to ``worker_id``, stealing if its deque is dry."""
        own = self._deques[self._slots[worker_id]]
        if not own:
            victim = max(self._deques, key=len)
            if victim:
                own.append(victim.pop())
                obs.counter("parallel.tasks_stolen").inc()
        if not own:
            return
        block_index = own.popleft()
        self._in_flight[worker_id] = (block_index, time.perf_counter())
        self._fleet.send(worker_id, (
            "block", self._epoch, block_index,
            [(task_id, self._payloads[task_id])
             for task_id in self._blocks[block_index]],
        ))

    def _reap_dead(self) -> None:
        """Requeue dead workers' blocks; replace workers within budget."""
        for worker_id in [wid for wid in list(self._slots)
                          if not self._fleet.alive(wid)]:
            slot = self._slots.pop(worker_id)
            exitcode = self._fleet.discard(worker_id)
            flight = self._in_flight.pop(worker_id, None)
            if flight is not None:
                self._deques[slot].appendleft(flight[0])
            logger.warning("%s: worker %d died (exitcode %s)",
                           self._pool._label, worker_id, exitcode)
            delay = self._restarts.next_delay()
            if delay is not None:
                obs.counter("parallel.worker_restarts").inc()
                if not self._pool._deadline_near():
                    time.sleep(delay)
                replacement = self._fleet.spawn()
                self._slots[replacement] = slot  # keeps the deque affinity
                self._setup(replacement)
                self._dispatch(replacement)

    def _kick_idle(self) -> None:
        """Hand stranded blocks to idle workers.

        A worker is normally re-dispatched when it delivers a result, so
        one that went idle (nothing left to steal) is never contacted
        again.  If a block re-enters a deque *after* that — a dead
        worker's requeued flight with the restart budget exhausted — it
        would strand forever.  Called on every poll timeout, this keeps
        the invariant that queued work reaches a live worker within one
        poll interval.
        """
        if not any(self._deques):
            return
        for worker_id in list(self._slots):
            if worker_id in self._in_flight:
                continue
            if self._fleet.alive(worker_id):
                self._dispatch(worker_id)

    # -- main loop ----------------------------------------------------------

    def run(self) -> list[int]:
        """Drive the stage; return the sorted task ids left unexecuted."""
        try:
            for slot, worker_id in enumerate(self._fleet.ensure(self._n_workers)):
                self._slots[worker_id] = slot
                self._setup(worker_id)
                self._dispatch(worker_id)
            while self._pending and self._failure is None and self._slots:
                if self._pool._deadline_near():
                    break
                message = self._fleet.recv(timeout=_POLL_SECONDS)
                if message is None:
                    self._reap_dead()
                    self._kick_idle()
                    continue
                self._handle(message)
        finally:
            if self._pending or self._failure is not None:
                # Cancel whatever is still outstanding under this epoch;
                # the fleet itself stays warm for the next stage.
                self._fleet.cancel(self._epoch)
            if self._fault_guard is not None:
                shutil.rmtree(self._fault_guard, ignore_errors=True)
        if self._failure is not None:
            raise self._failure
        return sorted(self._pending)

    def _handle(self, message) -> None:
        tracer = obs.current_tracer()
        if message[0] == "ready":
            _, worker_id, epoch, ok, detail, spans, exported = message
            if epoch != self._epoch:
                return  # ack from a cancelled stage
            tracer.adopt(
                spans, parent=tracer.current(),
                wrapper_name="parallel.setup",
                wrapper_attrs={"worker": worker_id},
            )
            obs.current_metrics().merge(exported)
            if not ok:
                self._failure = _shipped_error(*detail, self._pool._label)
            return
        _, worker_id, epoch, block_index, outputs = message
        if epoch != self._epoch:
            return  # straggler from a cancelled stage
        flight = self._in_flight.pop(worker_id, None)
        anchor = flight[1] if flight is not None else None
        for task_id, ok, value, spans, exported in outputs:
            tracer.adopt(
                spans, parent=tracer.current(), anchor=anchor,
                wrapper_name="parallel.task",
                wrapper_attrs={"task": task_id, "worker": worker_id},
            )
            obs.current_metrics().merge(exported)
            if not ok:
                self._failure = _shipped_error(*value, self._pool._label)
                return
            self._results[task_id] = value
            self._pending.discard(task_id)
            if self._on_result is not None:
                self._on_result(task_id, value)
        if worker_id in self._slots and self._fleet.alive(worker_id):
            self._dispatch(worker_id)
