"""A crash-isolated, work-stealing subprocess pool for pipeline shards.

The pipeline is embarrassingly parallel at two choke points — permutation
testing per pair-family shard and hypothesis-query evaluation per grouping
attribute — but both need more than ``ProcessPoolExecutor.map`` offers:

* **work stealing** — shard costs are wildly uneven (one large-domain
  attribute can hold 10x the candidates of the rest), so each worker owns
  a deque of shards and an idle worker steals from the back of the longest
  remaining deque (``parallel.tasks_stolen`` counts the steals);
* **crash isolation** — a worker that dies (OOM killer, native crash) is
  replaced up to ``max_worker_restarts`` times and its in-flight shard is
  re-queued; past the restart budget the pool stops replacing workers and
  the remaining shards run *in-process*, where the cooperative
  :class:`~repro.runtime.deadline.Deadline` checkpoints can fire and the
  PR 1 runtime ladder can degrade the stage
  (``parallel.worker_restarts`` / ``parallel.tasks_inprocess``);
* **deadline awareness** — when the remaining deadline falls under
  ``deadline_margin`` the pool stops dispatching, signals in-flight
  workers through a shared cancel event (checked between permutation-kernel
  slices), and finishes in-process so expiry surfaces as a normal
  :class:`~repro.errors.DeadlineExceeded` for the ladder to catch;
* **observability** — each task runs under an isolated tracer/registry in
  the worker; its span subtree is shipped back and re-parented into the
  main trace under a ``parallel.task`` span, and its counters merge into
  the ambient registry, so ``repro profile --workers 4`` shows one
  coherent tree.

Determinism: the pool only schedules.  Results are reassembled positionally
(``run`` returns them in payload order), so any worker count and any steal
pattern produce identical output; the bit-identical-results guarantee comes
from the shards themselves (key-derived RNG substreams, family-boundary
chunking).
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import queue as queue_mod
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import DeadlineExceeded, ReproError
from repro.parallel.config import ParallelConfig
from repro.runtime.deadline import Deadline
from repro.runtime.retry import RetryPolicy, RetryState

logger = logging.getLogger(__name__)

__all__ = ["ShardPool", "WorkerContext", "WorkerCrashed"]

#: Seconds the scheduler waits on the result queue before checking worker
#: liveness and the deadline.
_POLL_SECONDS = 0.1

#: Backoff curve for replacing crashed workers.  A worker that dies the
#: instant it starts (bad node, OOM storm) would otherwise be respawned in
#: a tight fork loop; the shared retry primitive paces replacements with
#: deterministic jitter.  ``max_attempts`` is irrelevant here — the budget
#: comes from :attr:`ParallelConfig.max_worker_restarts`.
_RESTART_BACKOFF = RetryPolicy(base_delay=0.02, multiplier=2.0,
                               max_delay=0.25, jitter=0.5)


class WorkerCrashed(ReproError):
    """A pool worker died; carries the exit code for diagnostics."""


#: Exit code of a worker killed by the ``parallel.worker`` fault point,
#: distinguishable from real crashes in logs.
_INJECTED_EXIT = 17


def _maybe_injected_worker_kill(guard_dir: str | None) -> None:
    """Honor ``REPRO_FAULTS=parallel.worker:kill[:xN]`` inside a worker.

    The guard directory is the cross-process fault budget: each planned
    kill claims one marker file with ``O_CREAT|O_EXCL`` before dying, so
    N planned kills crash exactly N task attempts across the whole fleet
    — replacement workers and requeued shards included — regardless of
    which worker dequeues them.
    """
    plan = os.environ.get("REPRO_FAULTS", "")
    if "parallel.worker" not in plan or guard_dir is None:
        return
    from repro.runtime.faults import parse_fault_plan

    for spec in parse_fault_plan(plan).specs:
        if spec.stage != "parallel.worker" or spec.action != "kill":
            continue
        if spec.times is None:
            os._exit(_INJECTED_EXIT)
        for shot in range(spec.times):
            try:
                fd = os.open(os.path.join(guard_dir, f"kill-{shot}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            os._exit(_INJECTED_EXIT)


@dataclass(slots=True)
class WorkerContext:
    """What a shard function sees as its first argument.

    ``state`` is whatever ``worker_init`` built once for this worker (for
    the evaluation stage: its own backend — SQLite connections never cross
    process boundaries).  ``checkpoint`` is the cooperative cancellation
    hook: it raises :class:`DeadlineExceeded` past the worker's deadline
    or when the parent signalled cancellation, and is cheap enough to call
    as often as the permutation kernel calls its slice checkpoint.  In the
    in-process fallback path, ``state`` comes from the same ``worker_init``
    and ``checkpoint`` wraps the *real* run deadline.
    """

    state: Any
    checkpoint: Callable[[], None] | None


def _pool_context() -> mp.context.BaseContext:
    """Fork where available (cheap, shares the dataset pages); else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _make_worker_checkpoint(cancel, deadline: Deadline | None, label: str):
    def checkpoint() -> None:
        if cancel.is_set():
            raise DeadlineExceeded(
                f"{label}: cancelled by the pool scheduler", stage=label
            )
        if deadline is not None:
            deadline.check(label)

    return checkpoint


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    cancel,
    worker_init: Callable[[Any], Any] | None,
    init_payload: Any,
    task_fn: Callable[[WorkerContext, Any], Any],
    deadline_remaining: float | None,
    label: str,
    fault_guard: str | None = None,
) -> None:
    """Worker loop: init once, then run tasks until the ``None`` sentinel.

    Every task executes under a fresh tracer/metrics pair; the exported
    span subtree and full metrics export travel back with the result so
    the parent can reassemble one coherent trace and fold labeled
    instruments losslessly.  Exceptions are shipped as ``(type name,
    message)`` — instances with custom ``__init__`` signatures (e.g.
    ``DeadlineExceeded(stage=...)``) do not unpickle reliably, so the
    parent re-raises from the name.
    """
    deadline = None
    if deadline_remaining is not None:
        deadline = Deadline(max(1e-3, deadline_remaining))
    context = WorkerContext(
        state=None,
        checkpoint=_make_worker_checkpoint(cancel, deadline, label),
    )
    try:
        context.state = (
            worker_init(init_payload) if worker_init is not None else init_payload
        )
    except BaseException as exc:  # noqa: BLE001 - must cross the process boundary
        result_queue.put(
            (None, worker_id, False, (type(exc).__name__, str(exc)), [], [])
        )
        return
    while True:
        message = task_queue.get()
        if message is None:
            break
        task_id, payload = message
        _maybe_injected_worker_kill(fault_guard)
        with obs.capture() as (tracer, metrics):
            try:
                value = task_fn(context, payload)
                ok = True
            except BaseException as exc:  # noqa: BLE001 - shipped to the parent
                value = (type(exc).__name__, str(exc))
                ok = False
        result_queue.put(
            (task_id, worker_id, ok, value, tracer.export(), metrics.export())
        )


def _shipped_error(kind: str, detail: str, label: str) -> BaseException:
    """Rebuild a worker-side exception in the parent, type-mapped.

    Deadline expiry and memory pressure keep their types so the runtime
    ladder applies the right degradation; everything else surfaces as a
    :class:`ReproError` carrying the original type name.
    """
    if kind == "DeadlineExceeded":
        return DeadlineExceeded(f"{label}: {detail}", stage=label)
    if kind == "MemoryError":
        return MemoryError(f"{label}: {detail}")
    return ReproError(f"{label}: worker task failed ({kind}: {detail})")


class ShardPool:
    """Run shard payloads across crash-isolated workers, results in order.

    Parameters
    ----------
    parallel:
        The :class:`~repro.parallel.config.ParallelConfig` in force.
    task_fn:
        ``task_fn(ctx, payload) -> result``; must be a module-level
        function (it crosses the process boundary under spawn).
    worker_init:
        Optional per-worker constructor ``worker_init(init_payload) ->
        state``, run once per worker (and again in each replacement
        worker).  Build per-worker resources here — e.g. a backend with
        its own SQLite connection.
    init_payload:
        Shipped once per worker; becomes ``ctx.state`` directly when no
        ``worker_init`` is given.
    label:
        Span/log prefix (the pool span is ``parallel.<label>``).
    deadline:
        The run deadline.  The pool stops dispatching when
        ``deadline.remaining()`` falls under ``parallel.deadline_margin``
        and finishes in-process, where expiry raises normally.
    """

    def __init__(
        self,
        parallel: ParallelConfig,
        *,
        task_fn: Callable[[WorkerContext, Any], Any],
        worker_init: Callable[[Any], Any] | None = None,
        init_payload: Any = None,
        label: str = "shards",
        deadline: Deadline | None = None,
    ):
        self._parallel = parallel
        self._task_fn = task_fn
        self._worker_init = worker_init
        self._init_payload = init_payload
        self._label = label
        self._deadline = deadline
        self._ctx = _pool_context()

    # -- in-process execution (fallback and degradation path) ---------------

    def run_local(
        self,
        tasks: Sequence[tuple[int, Any]],
        results: list[Any],
        on_result: Callable[[int, Any], None] | None = None,
        *,
        count: bool = True,
    ) -> None:
        """Run ``(task_id, payload)`` pairs in the parent process.

        This is the degradation path: the checkpoint wraps the *real*
        deadline, so a :class:`DeadlineExceeded` raised here escapes to
        the runtime ladder exactly as sequential execution would — the
        pool never absorbs deadline expiry.
        """
        checkpoint = None
        if self._deadline is not None and self._deadline.limited:
            checkpoint = lambda: self._deadline.check(self._label)  # noqa: E731
        state = (
            self._worker_init(self._init_payload)
            if self._worker_init is not None
            else self._init_payload
        )
        context = WorkerContext(state=state, checkpoint=checkpoint)
        try:
            for task_id, payload in tasks:
                if checkpoint is not None:
                    checkpoint()
                results[task_id] = self._task_fn(context, payload)
                if count:
                    obs.counter("parallel.tasks_inprocess").inc()
                if on_result is not None:
                    on_result(task_id, results[task_id])
        finally:
            if self._worker_init is not None:
                close = getattr(state, "close", None)
                if callable(close):
                    close()

    # -- the scheduler -------------------------------------------------------

    def run(
        self,
        payloads: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
        skip: set[int] | frozenset[int] = frozenset(),
    ) -> list[Any]:
        """Execute every payload; return results in payload order.

        ``on_result(task_id, result)`` fires as each shard completes (in
        completion order — the mid-shard checkpoint hook).  ``skip`` holds
        task ids already satisfied by a resumed checkpoint; their result
        slots stay ``None`` for the caller to fill.  Worker-side Python
        exceptions re-raise in the parent type-mapped; worker *deaths* are
        absorbed up to the restart budget, then the pool degrades to
        in-process execution.
        """
        results: list[Any] = [None] * len(payloads)
        todo = [i for i in range(len(payloads)) if i not in skip]
        if not todo:
            return results
        n_workers = min(self._parallel.workers, len(todo))
        if n_workers <= 1 or self._deadline_near():
            self.run_local(
                [(i, payloads[i]) for i in todo], results, on_result,
                count=self._parallel.active,
            )
            return results

        with obs.span(
            f"parallel.{self._label}", workers=n_workers, tasks=len(todo)
        ) as pool_span:
            leftovers = _Scheduler(self, payloads, todo, results,
                                   on_result, n_workers).run()
            pool_span.set(pool_completed=len(todo) - len(leftovers))
        if leftovers:
            logger.warning(
                "%s: running %d remaining shard(s) in-process "
                "(deadline near or restart budget exhausted)",
                self._label, len(leftovers),
            )
            self.run_local(
                [(i, payloads[i]) for i in leftovers], results, on_result
            )
        return results

    def _deadline_near(self) -> bool:
        return (
            self._deadline is not None
            and self._deadline.limited
            and self._deadline.remaining() < self._parallel.deadline_margin
        )


class _Scheduler:
    """One ``ShardPool.run`` invocation's worker fleet and task ledger."""

    def __init__(self, pool: ShardPool, payloads, todo, results,
                 on_result, n_workers: int):
        self._pool = pool
        self._payloads = payloads
        self._results = results
        self._on_result = on_result
        self._n_workers = n_workers
        ctx = pool._ctx
        self._cancel = ctx.Event()
        self._result_queue = ctx.Queue()
        # Contiguous block partition: a steal moves one shard from the
        # tail of the fullest deque, preserving range locality.
        self._deques: list[deque] = [deque() for _ in range(n_workers)]
        for position, task_id in enumerate(todo):
            self._deques[position * n_workers // len(todo)].append(task_id)
        self._workers: dict[int, tuple] = {}  # id -> (process, task_queue)
        self._in_flight: dict[int, tuple[int, float]] = {}  # id -> (task, t)
        self._pending: set[int] = set(todo)
        self._restarts = RetryState(
            _RESTART_BACKOFF, retries=pool._parallel.max_worker_restarts
        )
        self._failure: BaseException | None = None
        # Cross-process budget for the parallel.worker fault point: a
        # shared directory of claim markers, one per planned kill.
        self._fault_guard: str | None = None
        if "parallel.worker" in os.environ.get("REPRO_FAULTS", ""):
            self._fault_guard = tempfile.mkdtemp(prefix="repro-worker-fault-")

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        pool = self._pool
        task_queue = pool._ctx.SimpleQueue()
        remaining = None
        if pool._deadline is not None and pool._deadline.limited:
            remaining = pool._deadline.remaining()
        process = pool._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue, self._cancel,
                  pool._worker_init, pool._init_payload, pool._task_fn,
                  remaining, pool._label, self._fault_guard),
            daemon=True,
            name=f"repro-{pool._label}-{worker_id}",
        )
        process.start()
        self._workers[worker_id] = (process, task_queue)

    def _dispatch(self, worker_id: int) -> None:
        """Send the next task to ``worker_id``, stealing if its deque is dry."""
        own = self._deques[worker_id % self._n_workers]
        if not own:
            victim = max(self._deques, key=len)
            if victim:
                own.append(victim.pop())
                obs.counter("parallel.tasks_stolen").inc()
        if not own:
            return
        task_id = own.popleft()
        self._in_flight[worker_id] = (task_id, time.perf_counter())
        self._workers[worker_id][1].put((task_id, self._payloads[task_id]))

    def _reap_dead(self) -> None:
        """Requeue dead workers' shards; replace workers within budget."""
        dead = [wid for wid, (process, _) in self._workers.items()
                if not process.is_alive()]
        for worker_id in dead:
            process, _ = self._workers.pop(worker_id)
            flight = self._in_flight.pop(worker_id, None)
            if flight is not None:
                self._deques[worker_id % self._n_workers].appendleft(flight[0])
            logger.warning("%s: worker %d died (exitcode %s)",
                           self._pool._label, worker_id, process.exitcode)
            delay = self._restarts.next_delay()
            if delay is not None:
                obs.counter("parallel.worker_restarts").inc()
                if not self._pool._deadline_near():
                    time.sleep(delay)
                self._spawn(worker_id)  # keeps the deque affinity
                self._dispatch(worker_id)

    def _shutdown(self) -> None:
        self._cancel.set()
        for _, task_queue in self._workers.values():
            task_queue.put(None)
        for process, _ in self._workers.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        if self._fault_guard is not None:
            shutil.rmtree(self._fault_guard, ignore_errors=True)

    # -- observability ------------------------------------------------------

    def _absorb(self, worker_id: int, spans: list, exported: list) -> None:
        """Re-parent the worker's span subtree; merge its metrics export."""
        flight = self._in_flight.get(worker_id)
        tracer = obs.current_tracer()
        tracer.adopt(
            spans,
            parent=tracer.current(),
            anchor=flight[1] if flight is not None else None,
            wrapper_name="parallel.task",
            wrapper_attrs={
                "task": flight[0] if flight is not None else None,
                "worker": worker_id,
            },
        )
        obs.current_metrics().merge(exported)

    # -- main loop ----------------------------------------------------------

    def run(self) -> list[int]:
        """Drive the fleet; return the sorted task ids left unexecuted."""
        try:
            for worker_id in range(self._n_workers):
                self._spawn(worker_id)
                self._dispatch(worker_id)
            while self._pending and self._failure is None and self._workers:
                if self._pool._deadline_near():
                    break
                try:
                    message = self._result_queue.get(timeout=_POLL_SECONDS)
                except queue_mod.Empty:
                    self._reap_dead()
                    continue
                self._handle(message)
        finally:
            self._shutdown()
        if self._failure is not None:
            raise self._failure
        return sorted(self._pending)

    def _handle(self, message) -> None:
        task_id, worker_id, ok, value, spans, exported = message
        self._absorb(worker_id, spans, exported)
        self._in_flight.pop(worker_id, None)
        if not ok:
            self._failure = _shipped_error(*value, self._pool._label)
            return
        self._results[task_id] = value
        self._pending.discard(task_id)
        if self._on_result is not None:
            self._on_result(task_id, value)
        if worker_id in self._workers:
            self._dispatch(worker_id)
