"""repro — reproduction of "Automatic generation of comparison notebooks
for interactive data exploration" (Chanson et al., EDBT 2022).

Quickstart::

    import repro

    run = repro.generate_notebook("mydata.csv", out="mydata.ipynb")

or, keeping resources (table, aggregate cache, backend, tracer) across
several runs::

    config = repro.ReproConfig(budget=8).with_parallel(workers=4)
    with repro.Session("mydata.csv", config=config) as session:
        run = session.generate()
        session.write_notebook(run, "mydata.ipynb")

The stable integration surface is :mod:`repro.api` plus
:class:`repro.ReproConfig`; the older :class:`NotebookGenerator` facade
still works but is a deprecation shim.

Subpackages
-----------
``repro.relational``
    Columnar in-memory relational engine (the RDBMS substrate).
``repro.sqlengine``
    SQL parser + executor for the emitted query subset.
``repro.stats``
    Permutation tests, BH-FDR correction, sampling strategies.
``repro.insights``
    Insight types, enumeration, significance, transitivity pruning.
``repro.queries``
    Comparison queries, SQL generation, interestingness, distance.
``repro.generation``
    Algorithm 1 / Algorithm 2 pipelines and the Table 3/7 presets.
``repro.tap``
    Traveling Analyst Problem: exact branch-and-bound and Algorithm 3.
``repro.notebook``
    ipynb / SQL-script rendering of generated notebooks.
``repro.datasets``
    Synthetic datasets mirroring the paper's evaluation data.
``repro.evaluation``
    Timing harness, solution quality metrics, simulated user study.
"""

from repro.errors import ReproError
from repro.generation import GenerationConfig, NotebookGenerator, NotebookRun, preset
from repro.api import Session, generate_notebook
from repro.config import ReproConfig
from repro.parallel import ParallelConfig
from repro.persistence import load_outcome, load_run, resolve_outcome, save_outcome, save_run
from repro.queries import ComparisonQuery
from repro.relational import Table, read_csv, read_csv_text


def _read_version() -> str:
    """Resolve the package version from its single source of truth.

    Installed (even as an editable/egg-info checkout), package metadata
    answers; from a bare source tree we parse ``pyproject.toml`` instead.
    Both views read the same ``[project] version`` field, so the string
    can never drift from what ``pip`` reports.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # PackageNotFoundError or exotic metadata backends
        pass
    try:
        import tomllib
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        with pyproject.open("rb") as fh:
            return tomllib.load(fh)["project"]["version"]
    except Exception:
        return "0.0.0+unknown"


__version__ = _read_version()

__all__ = [
    "ComparisonQuery",
    "GenerationConfig",
    "NotebookGenerator",
    "NotebookRun",
    "ParallelConfig",
    "ReproConfig",
    "ReproError",
    "Session",
    "Table",
    "generate_notebook",
    "load_outcome",
    "load_run",
    "preset",
    "read_csv",
    "read_csv_text",
    "resolve_outcome",
    "save_outcome",
    "save_run",
    "__version__",
]
