"""Notebook rendering: cell model, ipynb writer, SQL script writer."""

from repro.notebook.build import build_notebook
from repro.notebook.cells import Cell, MarkdownCell, Notebook, SQLCell
from repro.notebook.charts import (
    chart_markdown_block,
    comparison_chart_json,
    comparison_chart_spec,
    comparison_chart_values,
)
from repro.notebook.ipynb import to_ipynb_dict, to_ipynb_json, write_ipynb
from repro.notebook.narrative import (
    insight_bullet,
    notebook_header,
    query_narrative,
    query_title,
)
from repro.notebook.sqlscript import to_sql_script, write_sql_script

__all__ = [
    "Cell",
    "MarkdownCell",
    "Notebook",
    "SQLCell",
    "build_notebook",
    "chart_markdown_block",
    "comparison_chart_json",
    "comparison_chart_spec",
    "comparison_chart_values",
    "insight_bullet",
    "notebook_header",
    "query_narrative",
    "query_title",
    "to_ipynb_dict",
    "to_ipynb_json",
    "to_sql_script",
    "write_ipynb",
    "write_sql_script",
]
