"""Assemble a :class:`Notebook` from an ordered list of generated queries.

The builder renders each query's SQL (bound to the dataset's table name),
optionally executes it on the SQL engine to attach a result preview, and
interleaves the markdown narration.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.errors import NotebookError, ReproError
from repro.generation.generator import GeneratedQuery
from repro.notebook.cells import Notebook
from repro.notebook.charts import chart_markdown_block
from repro.notebook.narrative import notebook_header, query_narrative
from repro.queries.evaluate import evaluate_comparison
from repro.queries.explain import explanation_sentence
from repro.queries.sqlgen import bind_table, comparison_sql
from repro.relational.table import Table
from repro.sqlengine.executor import Catalog, execute_sql


def build_notebook(
    generated: Sequence[GeneratedQuery],
    table: Table | None = None,
    table_name: str = "dataset",
    title: str = "Comparison notebook",
    include_previews: bool = True,
    include_explanations: bool = True,
    include_charts: bool = True,
    preview_rows: int = 12,
) -> Notebook:
    """Build the notebook; previews/explanations/charts require ``table``."""
    if not generated:
        raise NotebookError("cannot build a notebook from zero queries")
    with obs.span(
        "render.notebook", queries=len(generated), previews=bool(include_previews)
    ):
        notebook = Notebook(title)
        notebook.add_markdown(notebook_header(title, table_name, len(generated)))
        catalog = Catalog({table_name: table}) if table is not None else None
        for index, item in enumerate(generated, start=1):
            with obs.span("render.query", index=index) as cell_span:
                comparison = None
                if table is not None and (include_explanations or include_charts):
                    comparison = evaluate_comparison(table, item.query)
                explanation = None
                if include_explanations and comparison is not None:
                    try:
                        explanation = explanation_sentence(comparison)
                    except ReproError:
                        explanation = None  # empty comparison etc. — narrate without it
                notebook.add_markdown(query_narrative(index, item, explanation))
                sql = bind_table(comparison_sql(item.query), table_name)
                preview = None
                if include_previews and catalog is not None:
                    result = execute_sql(sql + ";", catalog)
                    preview = result.pretty(limit=preview_rows)
                    obs.counter("notebook.previews").inc()
                notebook.add_sql(sql + ";", preview)
                if include_charts and comparison is not None and comparison.n_groups > 0:
                    notebook.add_markdown(chart_markdown_block(comparison))
                obs.histogram("render.query_seconds").observe(cell_span.elapsed)
        obs.counter("notebook.cells").inc(len(notebook.cells))
        obs.counter("notebook.notebooks").inc()
    return notebook
