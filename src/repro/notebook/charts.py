"""Vega-Lite chart specifications for comparison results.

The paper's comparison queries are "used to compare two data series" and
Figure 2 displays the result as a grouped bar chart.  This module emits a
self-contained Vega-Lite v5 JSON spec per comparison result — pure JSON,
no plotting dependency — which the ipynb writer embeds so any Vega-aware
notebook front end renders the chart the insight was triggered by.
"""

from __future__ import annotations

import json

from repro.errors import NotebookError
from repro.queries.evaluate import ComparisonResult
from repro.queries.sqlgen import comparison_aliases

#: Vega-Lite schema the emitted specs declare.
VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"


def comparison_chart_values(result: ComparisonResult) -> list[dict]:
    """Long-form rows for the grouped bar chart (one per group x side)."""
    query = result.query
    rows: list[dict] = []
    for group, x, y in zip(result.groups, result.x, result.y):
        for label, value in ((query.val, x), (query.val_other, y)):
            if value == value:  # skip NaN cells, Vega treats them poorly
                rows.append(
                    {
                        str(query.group_by): str(group),
                        str(query.selection_attribute): str(label),
                        "value": float(value),
                    }
                )
    return rows


def comparison_chart_spec(result: ComparisonResult, title: str | None = None) -> dict:
    """A grouped-bar Vega-Lite spec of the comparison (Figure 2's chart)."""
    if result.n_groups == 0:
        raise NotebookError("cannot chart an empty comparison result")
    query = result.query
    alias_x, alias_y = comparison_aliases(query)
    y_title = f"{query.agg}({query.measure})"
    return {
        "$schema": VEGA_LITE_SCHEMA,
        "title": title or query.describe(),
        "data": {"values": comparison_chart_values(result)},
        "mark": "bar",
        "encoding": {
            "x": {"field": query.group_by, "type": "nominal", "title": query.group_by},
            "xOffset": {"field": query.selection_attribute},
            "y": {"field": "value", "type": "quantitative", "title": y_title},
            "color": {
                "field": query.selection_attribute,
                "type": "nominal",
                "title": f"{query.selection_attribute} ({alias_x} vs {alias_y})",
            },
        },
        "width": {"step": 28},
    }


def comparison_chart_json(result: ComparisonResult, title: str | None = None) -> str:
    """The spec serialized as compact JSON."""
    return json.dumps(comparison_chart_spec(result, title), sort_keys=True)


def chart_markdown_block(result: ComparisonResult, title: str | None = None) -> str:
    """A fenced ``vega-lite`` markdown block (rendered by Jupyter-like UIs)."""
    spec = json.dumps(comparison_chart_spec(result, title), indent=1)
    return f"```vega-lite\n{spec}\n```"
