"""Markdown narration of comparison queries and their insights.

The generated notebook is meant to be "a starting point of the exploration
of a potentially unknown dataset" (Section 6.5), so each query cell is
preceded by a short narration: what is compared, which insights the chart
evidences, how significant and how credible each is.
"""

from __future__ import annotations

from repro.generation.generator import GeneratedQuery
from repro.insights.insight import InsightEvidence
from repro.insights.types import insight_type
from repro.queries.comparison import ComparisonQuery


def notebook_header(title: str, dataset_name: str, n_queries: int) -> str:
    return (
        f"# {title}\n\n"
        f"Automatically generated comparison notebook over **{dataset_name}** "
        f"({n_queries} comparison queries).\n\n"
        "Each query compares an aggregate of a measure between two values of a "
        "categorical attribute, grouped by another attribute. Every reported "
        "insight passed a permutation test with Benjamini-Hochberg correction."
    )


def query_title(index: int, query: ComparisonQuery) -> str:
    return (
        f"## Query {index}: {query.agg}({query.measure}) by {query.group_by} — "
        f"{query.selection_attribute} = {query.val} vs {query.val_other}"
    )


def insight_bullet(evidence: InsightEvidence) -> str:
    candidate = evidence.insight.candidate
    itype = insight_type(candidate.type_code)
    return (
        f"- **{itype.label}**: {candidate.measure} for "
        f"{candidate.attribute}={candidate.val} dominates {candidate.attribute}="
        f"{candidate.val_other} "
        f"(significance {evidence.insight.significance:.3f}, "
        f"credibility {evidence.credibility}/{evidence.n_postulating})"
    )


def query_narrative(index: int, generated: GeneratedQuery, explanation: str | None = None) -> str:
    lines = [query_title(index, generated.query), ""]
    lines.append(
        f"Interestingness {generated.interest:.4f} — aggregates "
        f"{generated.tuples_aggregated} tuples into {generated.n_groups} groups."
    )
    if generated.supported:
        lines.append("")
        lines.append("Insights evidenced by this comparison:")
        ordered = sorted(generated.supported, key=lambda e: -e.insight.significance)
        lines.extend(insight_bullet(e) for e in ordered)
    if explanation:
        lines.append("")
        lines.append(f"The difference is {explanation}.")
    return "\n".join(lines)
