"""Jupyter ``.ipynb`` (nbformat 4) rendering — no external dependency.

The paper deploys its generated notebooks on Jupyter; this writer produces
standard notebook JSON by hand.  SQL cells are emitted as ``%%sql``-style
code cells (raw SQL text in a code cell, plus an attached plain-text
result preview as an output when available).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import NotebookError
from repro.notebook.cells import MarkdownCell, Notebook, SQLCell


def _source_lines(text: str) -> list[str]:
    lines = text.splitlines(keepends=True)
    return lines if lines else [""]


def _markdown_cell(cell: MarkdownCell) -> dict:
    return {
        "cell_type": "markdown",
        "metadata": {},
        "source": _source_lines(cell.text),
    }


def _code_cell(cell: SQLCell) -> dict:
    outputs = []
    if cell.result_preview:
        outputs.append(
            {
                "output_type": "stream",
                "name": "stdout",
                "text": _source_lines(cell.result_preview),
            }
        )
    return {
        "cell_type": "code",
        "execution_count": None,
        "metadata": {"language": "sql"},
        "source": _source_lines(cell.sql),
        "outputs": outputs,
    }


def to_ipynb_dict(notebook: Notebook) -> dict:
    """The nbformat-4 JSON structure of ``notebook``."""
    notebook.require_nonempty()
    cells = []
    for cell in notebook.cells:
        if isinstance(cell, MarkdownCell):
            cells.append(_markdown_cell(cell))
        elif isinstance(cell, SQLCell):
            cells.append(_code_cell(cell))
        else:  # pragma: no cover - model is closed
            raise NotebookError(f"unknown cell type {type(cell).__name__}")
    return {
        "nbformat": 4,
        "nbformat_minor": 5,
        "metadata": {
            "title": notebook.title,
            "language_info": {"name": "sql"},
            "generator": "repro comparison-notebook generator",
        },
        "cells": cells,
    }


def to_ipynb_json(notebook: Notebook) -> str:
    return json.dumps(to_ipynb_dict(notebook), indent=1, ensure_ascii=False)


def write_ipynb(notebook: Notebook, path: str | Path) -> None:
    """Serialize to a ``.ipynb`` file."""
    Path(path).write_text(to_ipynb_json(notebook), encoding="utf-8")
