"""Plain ``.sql`` script rendering of a comparison notebook.

For users who want the queries without Jupyter: markdown narration becomes
``--`` comment blocks, queries become semicolon-terminated statements.
"""

from __future__ import annotations

from pathlib import Path

from repro.notebook.cells import MarkdownCell, Notebook, SQLCell


def to_sql_script(notebook: Notebook) -> str:
    notebook.require_nonempty()
    chunks: list[str] = []
    for cell in notebook.cells:
        if isinstance(cell, MarkdownCell):
            if cell.text.startswith("```vega-lite"):
                continue  # chart specs are for notebook UIs, noise in .sql
            commented = "\n".join(f"-- {line}" if line else "--" for line in cell.text.splitlines())
            chunks.append(commented)
        elif isinstance(cell, SQLCell):
            sql = cell.sql.rstrip()
            if not sql.endswith(";"):
                sql += ";"
            chunks.append(sql)
    return "\n\n".join(chunks) + "\n"


def write_sql_script(notebook: Notebook, path: str | Path) -> None:
    Path(path).write_text(to_sql_script(notebook), encoding="utf-8")
