"""Notebook cell model (renderer-independent).

A comparison notebook is a sequence of cells: markdown narration and SQL
code.  The model is deliberately tiny — the two renderers (:mod:`ipynb`
and :mod:`sqlscript`) are the real products.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import NotebookError


@dataclass(frozen=True, slots=True)
class MarkdownCell:
    text: str


@dataclass(frozen=True, slots=True)
class SQLCell:
    """A SQL query cell, optionally with a pre-computed result preview."""

    sql: str
    result_preview: str | None = None


Cell = MarkdownCell | SQLCell


@dataclass(slots=True)
class Notebook:
    """An ordered list of cells plus a title."""

    title: str
    cells: list[Cell] = field(default_factory=list)

    def add_markdown(self, text: str) -> None:
        self.cells.append(MarkdownCell(text))

    def add_sql(self, sql: str, result_preview: str | None = None) -> None:
        self.cells.append(SQLCell(sql, result_preview))

    def extend(self, cells: Iterable[Cell]) -> None:
        self.cells.extend(cells)

    @property
    def n_queries(self) -> int:
        return sum(1 for c in self.cells if isinstance(c, SQLCell))

    def require_nonempty(self) -> None:
        if not self.cells:
            raise NotebookError("notebook has no cells")
