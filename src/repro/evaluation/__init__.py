"""Evaluation harness: quality metrics, timing, simulated user study."""

from repro.evaluation.quality import (
    AggregateStat,
    objective_deviation_percent,
    solution_recall,
)
from repro.evaluation.reporting import render_histogram, render_series, render_table
from repro.evaluation.runtime import PresetRun, Stopwatch, run_preset
from repro.evaluation.user_study import (
    CRITERIA,
    NotebookFeatures,
    StudyResult,
    simulate_user_study,
)

__all__ = [
    "CRITERIA",
    "AggregateStat",
    "NotebookFeatures",
    "PresetRun",
    "Stopwatch",
    "StudyResult",
    "objective_deviation_percent",
    "render_histogram",
    "render_series",
    "render_table",
    "run_preset",
    "simulate_user_study",
    "solution_recall",
]
