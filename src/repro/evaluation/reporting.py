"""Plain-text rendering of experiment tables and series.

Every benchmark prints its paper table/figure through these helpers so the
output is uniform and diff-able (EXPERIMENTS.md quotes it verbatim).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Fixed-width table with a header separator."""
    materialized = [[_cell(v) for v in row] for row in rows]
    cells = [list(headers)] + materialized
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(cells):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """One figure series as ``name: x=y`` pairs (for figure benchmarks)."""
    pairs = ", ".join(f"{_cell(x)}={_cell(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def render_histogram(values: Sequence[float], n_bins: int = 10, width: int = 40) -> str:
    """ASCII histogram (used for the Figure 5 run-time distribution)."""
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"all {len(values)} values = {lo:.6g}"
    span = (hi - lo) / n_bins
    counts = [0] * n_bins
    for v in values:
        b = min(n_bins - 1, int((v - lo) / span))
        counts[b] += 1
    peak = max(counts)
    lines = []
    for b, count in enumerate(counts):
        bar = "#" * max(1 if count else 0, int(round(count / peak * width)))
        lines.append(f"[{lo + b * span:10.6f}, {lo + (b + 1) * span:10.6f}) {count:5d} {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
