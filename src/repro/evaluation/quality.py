"""Solution-quality metrics for the heuristic-vs-exact experiments.

Section 6.4 reports two metrics against the optimum:

* **deviation** — ``(cplex.z - algo3.z) / cplex.z × 100`` where ``z`` is
  the summed interestingness of the solution (Table 5);
* **recall** — the fraction of the optimal solution's queries that the
  approximate solution also picked (Table 6), order-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TAPError
from repro.tap.instance import TAPSolution


def objective_deviation_percent(exact: TAPSolution, approximate: TAPSolution) -> float:
    """Table 5's metric: relative interest loss of the approximation, in %.

    Zero when both are equally good; negative values (approximation better)
    indicate the "exact" solution was a timeout incumbent.
    """
    if exact.interest <= 0:
        raise TAPError("deviation undefined for a zero-interest exact solution")
    return (exact.interest - approximate.interest) / exact.interest * 100.0


def solution_recall(exact: TAPSolution, approximate: TAPSolution) -> float:
    """Table 6's metric: |approx ∩ optimal| / |optimal| on query sets."""
    optimal = set(exact.indices)
    if not optimal:
        raise TAPError("recall undefined for an empty exact solution")
    return len(optimal & set(approximate.indices)) / len(optimal)


@dataclass(frozen=True, slots=True)
class AggregateStat:
    """mean ± std (and extremes) of a metric over repeated runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "AggregateStat":
        if not values:
            raise TAPError("cannot aggregate zero values")
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            float(arr.mean()),
            float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            float(arr.min()),
            float(arr.max()),
            int(arr.size),
        )

    def format(self, digits: int = 2, unit: str = "") -> str:
        return f"{self.mean:.{digits}f} ±{self.std:.{digits}f}{unit}"
