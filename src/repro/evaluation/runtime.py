"""Timing harness for the scalability experiments (Figures 6-9).

Small helpers shared by the benchmark scripts: a stopwatch, repeated-run
aggregation, and a one-call "run preset on dataset, return timings +
counters" driver.  :func:`run_preset` measures through the
:mod:`repro.obs` span clock, so its wall time lines up with the span
tree the same run records.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro import obs
from repro.generation.pipeline import NotebookGenerator, NotebookRun
from repro.relational.table import Table


@dataclass(slots=True)
class Stopwatch:
    """Accumulating named timers."""

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + (time.perf_counter() - start)

    def total(self) -> float:
        return sum(self.laps.values())


@dataclass(frozen=True, slots=True)
class PresetRun:
    """Outcome of one preset execution with its phase breakdown."""

    preset_name: str
    run: NotebookRun
    wall_seconds: float

    @property
    def breakdown(self) -> dict[str, float]:
        return self.run.timings.as_dict()

    @property
    def n_queries(self) -> int:
        return self.run.outcome.n_queries

    @property
    def insights_tested(self) -> int:
        return self.run.outcome.counters.get("insights_tested", 0)

    @property
    def insights_significant(self) -> int:
        return self.run.outcome.counters.get("insights_significant", 0)


def run_preset(
    generator: NotebookGenerator,
    table: Table,
    preset_name: str,
    budget: float,
    epsilon_distance: float | None = None,
    progress: Callable[[str], None] | None = None,
) -> PresetRun:
    """Execute one configured generator end-to-end and time it."""
    with obs.span("bench.preset", preset=preset_name, rows=table.n_rows) as sp:
        run = generator.generate(
            table, budget=budget, epsilon_distance=epsilon_distance, progress=progress
        )
    return PresetRun(preset_name, run, sp.duration)
