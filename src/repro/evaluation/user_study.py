"""Simulated user study (substitute for the paper's Section 6.5).

The paper's 9 volunteers rated six 10-query notebooks on the four criteria
of Bar El et al. [11]: informativity, comprehensibility, expertise, and
human equivalence.  A live study is impossible offline, so we model the
raters: each criterion is a latent score computed from *notebook-intrinsic
features* (insight mass, significance, credibility, conciseness, coherence
of the browsing path, and diversity), perturbed by per-rater bias and
per-rating noise, mapped onto the 1-7 scale.

The latent models encode the qualitative mechanisms the paper discusses:
coherent (low-distance) sequences help comprehensibility but *hurt* human
equivalence ("values of ε_d favoring solutions where comparison queries
are very close to each other ... might explain the low scores on the
Human equivalence criterion"), significance and credibility drive
perceived expertise, and covered insight mass drives informativity.

The reproduction target is the paper's *statistical conclusions* (which
generator differences are significant under a t-test), not absolute bar
heights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ReproError
from repro.generation.generator import GeneratedQuery
from repro.queries.distance import DEFAULT_WEIGHTS, DistanceWeights, query_distance
from repro.queries.interestingness import conciseness
from repro.stats.rng import derive_rng

CRITERIA = ("informativity", "comprehensibility", "expertise", "human_equivalence")


@dataclass(frozen=True, slots=True)
class NotebookFeatures:
    """Intrinsic features of one generated notebook."""

    n_queries: int
    insight_mass: float
    n_distinct_insights: int
    insight_density: float  # distinct insights per query, saturating at 2
    mean_significance: float
    mean_credibility_ratio: float
    mean_conciseness: float
    coherence: float  # 1 / (1 + mean consecutive distance); 1 = identical queries
    diversity: float  # mean fraction of distinct parts across queries

    @classmethod
    def of(
        cls,
        queries: Sequence[GeneratedQuery],
        weights: DistanceWeights = DEFAULT_WEIGHTS,
    ) -> "NotebookFeatures":
        if not queries:
            raise ReproError("cannot featurize an empty notebook")
        seen: dict[tuple, float] = {}
        significances: list[float] = []
        credibilities: list[float] = []
        for g in queries:
            for evidence in g.supported:
                seen[evidence.insight.key] = evidence.insight.significance
                significances.append(evidence.insight.significance)
                credibilities.append(evidence.credibility_ratio)
        consecutive = [
            query_distance(queries[i].query, queries[i + 1].query, weights)
            for i in range(len(queries) - 1)
        ]
        mean_distance = float(np.mean(consecutive)) if consecutive else 0.0
        conc = [conciseness(g.tuples_aggregated, g.n_groups) for g in queries]
        n = len(queries)
        distinct_fraction = np.mean(
            [
                len({g.query.selection_attribute for g in queries}) / n,
                len({g.query.group_by for g in queries}) / n,
                len({g.query.measure for g in queries}) / n,
                len({frozenset((g.query.val, g.query.val_other)) for g in queries}) / n,
            ]
        )
        return cls(
            n_queries=n,
            insight_mass=float(sum(seen.values())),
            n_distinct_insights=len(seen),
            insight_density=min(1.0, len(seen) / (2.0 * n)),
            mean_significance=float(np.mean(significances)) if significances else 0.0,
            mean_credibility_ratio=float(np.mean(credibilities)) if credibilities else 0.0,
            mean_conciseness=float(np.mean(conc)),
            coherence=1.0 / (1.0 + mean_distance),
            diversity=float(distinct_fraction),
        )


def _latent_scores(features: NotebookFeatures) -> dict[str, float]:
    """Criterion latents in [0, 1]; see module docstring for the rationale.

    Informativity is keyed on what a rater can *see in the notebook* —
    insight density per query, how significant they look, and diversity —
    not on dataset-level quantities like total insight mass (a rater who
    never saw the dataset cannot know what was missed; this is exactly why
    the paper's sampling variants were not rated worse despite missing
    insights).
    """
    return {
        "informativity": 0.4 * features.insight_density
        + 0.4 * features.mean_significance
        + 0.2 * features.diversity,
        "comprehensibility": 0.55 * features.coherence + 0.45 * features.mean_conciseness,
        "expertise": 0.55 * features.mean_significance
        + 0.30 * features.mean_credibility_ratio
        + 0.15 * features.mean_conciseness,
        "human_equivalence": 0.45 * features.diversity
        + 0.30 * (1.0 - features.coherence)
        + 0.25 * features.mean_significance,
    }


@dataclass(slots=True)
class StudyResult:
    """Ratings per generator: array of shape (n_raters, n_criteria)."""

    ratings: dict[str, np.ndarray]
    features: dict[str, NotebookFeatures]

    def mean_table(self) -> list[tuple[str, float, float, float, float]]:
        rows = []
        for name, matrix in self.ratings.items():
            rows.append((name, *[float(matrix[:, c].mean()) for c in range(len(CRITERIA))]))
        return rows

    def t_test(self, first: str, second: str, criterion: str) -> float:
        """Two-sided Welch t-test p-value between two generators' ratings."""
        c = CRITERIA.index(criterion)
        a = self.ratings[first][:, c]
        b = self.ratings[second][:, c]
        result = scipy_stats.ttest_ind(a, b, equal_var=False)
        return float(result.pvalue)

    def significant_difference(
        self, first: str, second: str, criterion: str, alpha: float = 0.05
    ) -> bool:
        return self.t_test(first, second, criterion) < alpha


def simulate_user_study(
    notebooks: Mapping[str, Sequence[GeneratedQuery]],
    n_raters: int = 9,
    seed: int = 0,
    rater_bias_sigma: float = 0.08,
    noise_sigma: float = 0.12,
    weights: DistanceWeights = DEFAULT_WEIGHTS,
) -> StudyResult:
    """Rate each notebook with ``n_raters`` simulated volunteers.

    Ratings are ``1 + 6 * clip(latent + bias + noise, 0, 1)`` rounded to
    the nearest integer, mirroring a 1-7 Likert response.
    """
    if not notebooks:
        raise ReproError("no notebooks to rate")
    features = {name: NotebookFeatures.of(qs, weights) for name, qs in notebooks.items()}
    rng = derive_rng(seed, "user-study", tuple(sorted(notebooks)))
    biases = rng.normal(0.0, rater_bias_sigma, n_raters)
    ratings: dict[str, np.ndarray] = {}
    for name, feats in features.items():
        latents = _latent_scores(feats)
        matrix = np.zeros((n_raters, len(CRITERIA)))
        for r in range(n_raters):
            for c, criterion in enumerate(CRITERIA):
                value = latents[criterion] + biases[r] + rng.normal(0.0, noise_sigma)
                matrix[r, c] = 1.0 + 6.0 * float(np.clip(value, 0.0, 1.0))
        ratings[name] = np.round(matrix)
    return StudyResult(ratings, features)
