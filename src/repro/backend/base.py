"""The execution-backend contract: what the pipeline needs from an engine.

The paper phrases every hypothesis and comparison query as SQL sent to a
DBMS and reports "number of queries sent to the DBMS" as a first-class
metric (Table 3, Section 5.2).  This module carves that execution surface
out of the pipeline into an explicit, swappable contract so engines can be
exchanged without touching query generation, TAP resolution, or rendering:

* **scan / filter** — project a subset of columns, select rows matching an
  equality predicate;
* **distinct categorical values** — the active domain of an attribute;
* **group-by aggregation** — materialize the additive per-group summaries
  (count / sum / sum-of-squares / min / max) every comparison aggregate
  derives from;
* **comparison-pair evaluation** — Definition 3.1's joined two-series
  result for one comparison query.

Implementations (see :mod:`repro.backend.columnar` and
:mod:`repro.backend.sqlite`) return the *same* in-memory result types
(:class:`~repro.relational.cube.MaterializedAggregate`,
:class:`~repro.queries.evaluate.ComparisonResult`), so everything above
the backend is numerically backend-agnostic.

``statements_executed`` is the real counterpart of the paper's DBMS-query
metric: the number of SQL statements actually sent to an external engine.
It stays 0 for the in-process columnar backend and counts every pushed-down
statement for the SQLite backend.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult
from repro.relational.cube import MaterializedAggregate
from repro.relational.table import Table

#: Names of the built-in backends, in registration order.
BACKEND_NAMES: tuple[str, ...] = ("columnar", "sqlite")

#: Environment variable holding the default backend name (CI matrix hook).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendError(ReproError):
    """An execution backend was misconfigured or failed mid-statement."""


def default_backend_name() -> str:
    """The process-wide default backend: ``$REPRO_BACKEND`` or columnar.

    An invalid environment value raises immediately rather than silently
    running on the wrong engine (the CI matrix relies on this).
    """
    name = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not name:
        return BACKEND_NAMES[0]
    if name not in BACKEND_NAMES:
        raise BackendError(
            f"{BACKEND_ENV_VAR}={name!r} names no known backend; known: {BACKEND_NAMES}"
        )
    return name


@dataclass(frozen=True, slots=True)
class BackendCapabilities:
    """Capability flags a caller may branch on (never required for parity).

    Attributes
    ----------
    sql_pushdown:
        Aggregations run as real SQL statements in an engine outside the
        Python value layer; ``statements_executed`` is meaningful.
    zero_copy_scan:
        ``scan``/``filter_equals`` return views over in-memory arrays with
        no serialization boundary.
    additive_summaries:
        Materialized aggregates carry additive summaries that roll up to
        coarser group-bys without touching base data (Algorithm 2's
        prerequisite).  Both built-in backends provide this.
    concurrent_evaluate:
        ``materialize_aggregate``/``evaluate_comparison`` may be called
        from multiple threads concurrently.
    """

    sql_pushdown: bool
    zero_copy_scan: bool
    additive_summaries: bool = True
    concurrent_evaluate: bool = True


@runtime_checkable
class ExecutionBackend(Protocol):
    """The engine surface the pipeline runs against.

    Implementations are constructed over one base relation and answer all
    queries for that relation.  They must be usable as context managers and
    idempotently closeable.
    """

    name: str
    capabilities: BackendCapabilities
    #: SQL statements actually sent to an external engine (0 if in-process).
    statements_executed: int

    @property
    def table(self) -> Table:  # pragma: no cover - protocol
        """The base relation (always available in-process: the statistical
        tests are row-level and run inside Python regardless of backend)."""
        ...

    @property
    def storage(self) -> str:  # pragma: no cover - protocol
        """Data plane of the base relation's columns: ``heap`` or ``shm``."""
        ...

    @property
    def n_rows(self) -> int:  # pragma: no cover - protocol
        ...

    def distinct_values(self, attribute: str) -> tuple[str, ...]:  # pragma: no cover
        """Sorted non-null labels of a categorical attribute."""
        ...

    def scan(self, attributes: Sequence[str] | None = None) -> Table:  # pragma: no cover
        """Projection scan (all columns when ``attributes`` is None)."""
        ...

    def filter_equals(self, attribute: str, value: str) -> Table:  # pragma: no cover
        """Rows where categorical ``attribute`` equals ``value``."""
        ...

    def materialize_aggregate(
        self, attributes: Iterable[str], measures: Sequence[str] | None = None
    ) -> MaterializedAggregate:  # pragma: no cover
        """``GROUP BY attributes`` with additive summaries per measure."""
        ...

    def evaluate_comparison(self, query: ComparisonQuery) -> ComparisonResult:  # pragma: no cover
        """One comparison query, evaluated directly against base data."""
        ...

    def close(self) -> None:  # pragma: no cover
        ...


def source_table(source: "Table | ExecutionBackend") -> Table:
    """The base :class:`Table` of a table-or-backend argument."""
    if isinstance(source, Table):
        return source
    return source.table
