"""The execution-backend contract: what the pipeline needs from an engine.

The paper phrases every hypothesis and comparison query as SQL sent to a
DBMS and reports "number of queries sent to the DBMS" as a first-class
metric (Table 3, Section 5.2).  This module carves that execution surface
out of the pipeline into an explicit, swappable contract so engines can be
exchanged without touching query generation, TAP resolution, or rendering:

* **scan / filter** — project a subset of columns, select rows matching an
  equality predicate;
* **distinct categorical values** — the active domain of an attribute;
* **group-by aggregation** — materialize the additive per-group summaries
  (count / sum / sum-of-squares / min / max) every comparison aggregate
  derives from;
* **comparison-pair evaluation** — Definition 3.1's joined two-series
  result for one comparison query.

Implementations (see :mod:`repro.backend.columnar` and
:mod:`repro.backend.sqlite`) return the *same* in-memory result types
(:class:`~repro.relational.cube.MaterializedAggregate`,
:class:`~repro.queries.evaluate.ComparisonResult`), so everything above
the backend is numerically backend-agnostic.

``statements_executed`` is the real counterpart of the paper's DBMS-query
metric: the number of SQL statements actually sent to an external engine.
It stays 0 for the in-process columnar backend and counts every pushed-down
statement for the SQLite backend.

Backends that declare ``capabilities.batched_aggregates`` additionally
compile a whole *batch* of grouping requests (:class:`AggregateRequest`)
into minimal engine work through :meth:`ExecutionBackend
.materialize_aggregates` — the COMPARE-style multi-query optimization:
one shared scan answers many group-by sets instead of one statement per
set.  :func:`materialize_batch` routes through the capability and falls
back transparently to the per-set path, so callers never need to branch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult
from repro.relational.cube import MaterializedAggregate
from repro.relational.table import Table

#: Names of the built-in backends, in registration order.
BACKEND_NAMES: tuple[str, ...] = ("columnar", "sqlite")

#: Environment variable holding the default backend name (CI matrix hook).
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Environment variable toggling multi-query optimization (CI matrix hook).
MQO_ENV_VAR = "REPRO_MQO"


class BackendError(ReproError):
    """An execution backend was misconfigured or failed mid-statement."""


def default_backend_name() -> str:
    """The process-wide default backend: ``$REPRO_BACKEND`` or columnar.

    An invalid environment value raises immediately rather than silently
    running on the wrong engine (the CI matrix relies on this).
    """
    name = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not name:
        return BACKEND_NAMES[0]
    if name not in BACKEND_NAMES:
        raise BackendError(
            f"{BACKEND_ENV_VAR}={name!r} names no known backend; known: {BACKEND_NAMES}"
        )
    return name


def parse_mqo_flag(raw: str | None) -> bool:
    """Parse a ``REPRO_MQO``-style boolean (empty/None means on).

    Invalid values raise rather than silently running the wrong plan.
    """
    raw = (raw or "").strip().lower()
    if not raw:
        return True
    if raw in ("1", "true", "on", "yes"):
        return True
    if raw in ("0", "false", "off", "no"):
        return False
    raise BackendError(f"{MQO_ENV_VAR}={raw!r} is not a boolean flag (use 0 or 1)")


def default_mqo() -> bool:
    """The process-wide multi-query-optimization default.

    ``$REPRO_MQO`` (the CI matrix hook) turns batched aggregate
    compilation off with ``0`` and on with ``1``; unset means on — the
    batched planner is the production path and the per-set path is the
    parity oracle.
    """
    return parse_mqo_flag(os.environ.get(MQO_ENV_VAR))


@dataclass(frozen=True, slots=True)
class BackendCapabilities:
    """Capability flags a caller may branch on (never required for parity).

    Attributes
    ----------
    sql_pushdown:
        Aggregations run as real SQL statements in an engine outside the
        Python value layer; ``statements_executed`` is meaningful.
    zero_copy_scan:
        ``scan``/``filter_equals`` return views over in-memory arrays with
        no serialization boundary.
    additive_summaries:
        Materialized aggregates carry additive summaries that roll up to
        coarser group-bys without touching base data (Algorithm 2's
        prerequisite).  Both built-in backends provide this.
    concurrent_evaluate:
        ``materialize_aggregate``/``evaluate_comparison`` may be called
        from multiple threads concurrently.
    batched_aggregates:
        :meth:`ExecutionBackend.materialize_aggregates` compiles a batch
        of grouping requests into fewer engine passes than one-per-set
        (multi-query optimization).  Callers should route batches through
        :func:`materialize_batch`, which falls back per-set when the flag
        is off.
    incremental_aggregates:
        Materialized aggregates built by this backend can be *patched* in
        place of a rebuild when the base table grows by an appended row
        block (:meth:`~repro.relational.cube.MaterializedAggregate.patched`
        yields bit-identical results to a cold build).  Backends without
        the flag fall back transparently: their cached aggregates are
        dropped on append and rebuilt from the grown table.
    """

    sql_pushdown: bool
    zero_copy_scan: bool
    additive_summaries: bool = True
    concurrent_evaluate: bool = True
    batched_aggregates: bool = False
    incremental_aggregates: bool = False


@dataclass(frozen=True, slots=True)
class AggregateRequest:
    """One group-by set of a batched aggregation plan.

    Attributes
    ----------
    attributes:
        Grouping attributes in canonical (sorted) order — the same
        canonicalization :meth:`ExecutionBackend.materialize_aggregate`
        applies, so a batched build and a per-set build share cache keys.
    measures:
        Measures to materialize, or ``None`` for every measure of the
        schema (the cross-stage cache's superset-serving key).
    """

    attributes: tuple[str, ...]
    measures: tuple[str, ...] | None = None

    @classmethod
    def of(
        cls, attributes: Iterable[str], measures: Sequence[str] | None = None
    ) -> "AggregateRequest":
        return cls(
            tuple(sorted(attributes)),
            None if measures is None else tuple(measures),
        )


@runtime_checkable
class ExecutionBackend(Protocol):
    """The engine surface the pipeline runs against.

    Implementations are constructed over one base relation and answer all
    queries for that relation.  They must be usable as context managers and
    idempotently closeable.
    """

    name: str
    capabilities: BackendCapabilities
    #: SQL statements actually sent to an external engine (0 if in-process).
    statements_executed: int

    @property
    def table(self) -> Table:  # pragma: no cover - protocol
        """The base relation (always available in-process: the statistical
        tests are row-level and run inside Python regardless of backend)."""
        ...

    @property
    def storage(self) -> str:  # pragma: no cover - protocol
        """Data plane of the base relation's columns: ``heap`` or ``shm``."""
        ...

    @property
    def n_rows(self) -> int:  # pragma: no cover - protocol
        ...

    def distinct_values(self, attribute: str) -> tuple[str, ...]:  # pragma: no cover
        """Sorted non-null labels of a categorical attribute."""
        ...

    def scan(self, attributes: Sequence[str] | None = None) -> Table:  # pragma: no cover
        """Projection scan (all columns when ``attributes`` is None)."""
        ...

    def filter_equals(self, attribute: str, value: str) -> Table:  # pragma: no cover
        """Rows where categorical ``attribute`` equals ``value``."""
        ...

    def materialize_aggregate(
        self, attributes: Iterable[str], measures: Sequence[str] | None = None
    ) -> MaterializedAggregate:  # pragma: no cover
        """``GROUP BY attributes`` with additive summaries per measure."""
        ...

    def materialize_aggregates(
        self, requests: Sequence[AggregateRequest]
    ) -> list[MaterializedAggregate]:  # pragma: no cover
        """Batched group-bys, compiled into minimal backend work.

        Only meaningful when ``capabilities.batched_aggregates`` is set;
        results are returned in request order and are element-for-element
        identical to per-set :meth:`materialize_aggregate` calls (exact
        parity obligation).  Use :func:`materialize_batch` for the
        capability-checked entry point.
        """
        ...

    def evaluate_comparison(self, query: ComparisonQuery) -> ComparisonResult:  # pragma: no cover
        """One comparison query, evaluated directly against base data."""
        ...

    def close(self) -> None:  # pragma: no cover
        ...


def materialize_batch(
    backend: ExecutionBackend, requests: Sequence[AggregateRequest]
) -> list[MaterializedAggregate]:
    """Batched aggregation with transparent per-set fallback.

    Routes the whole batch through the backend's multi-query compiler when
    it declares the capability; otherwise issues the classic one statement
    (or pass) per group-by set.  Either way the results come back in
    request order and hit the same cross-stage cache keys.
    """
    if not requests:
        return []
    if getattr(backend.capabilities, "batched_aggregates", False):
        return backend.materialize_aggregates(requests)
    return [
        backend.materialize_aggregate(request.attributes, request.measures)
        for request in requests
    ]


def source_table(source: "Table | ExecutionBackend") -> Table:
    """The base :class:`Table` of a table-or-backend argument."""
    if isinstance(source, Table):
        return source
    return source.table
