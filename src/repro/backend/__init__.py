"""Pluggable execution backends (see ``docs/backends.md``).

The pipeline talks to an :class:`ExecutionBackend`; which engine actually
answers the group-bys is a configuration choice:

* ``columnar`` — the in-process NumPy path (default);
* ``sqlite`` — pushdown to a stdlib :mod:`sqlite3` database.
"""

from __future__ import annotations

from repro.backend.base import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    MQO_ENV_VAR,
    AggregateRequest,
    BackendCapabilities,
    BackendError,
    ExecutionBackend,
    default_backend_name,
    default_mqo,
    materialize_batch,
    source_table,
)
from repro.backend.columnar import ColumnarBackend
from repro.backend.sqlite import SqliteBackend
from repro.relational.table import Table

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "MQO_ENV_VAR",
    "AggregateRequest",
    "BackendCapabilities",
    "BackendError",
    "ColumnarBackend",
    "ExecutionBackend",
    "SqliteBackend",
    "as_backend",
    "create_backend",
    "default_backend_name",
    "default_mqo",
    "incremental_backend_names",
    "materialize_batch",
    "source_table",
]


def incremental_backend_names() -> frozenset[str]:
    """Backends whose cached aggregates can be patched across an append.

    A backend declaring ``capabilities.incremental_aggregates`` guarantees
    its group ordering matches :meth:`~repro.relational.cube
    .MaterializedAggregate.patched`; cache entries of other backends are
    dropped on append and re-aggregated from the grown table on demand.
    """
    return frozenset(
        cls.name
        for cls in (ColumnarBackend, SqliteBackend)
        if cls.capabilities.incremental_aggregates
    )


def create_backend(name: str, table, table_name: str = "dataset") -> ExecutionBackend:
    """Construct the named backend over ``table``.

    ``name`` may be None/empty to mean "the process default" (the
    ``REPRO_BACKEND`` environment variable, else columnar).  ``table``
    is a :class:`Table` or a data-plane
    :class:`~repro.relational.store.TableHandle`, which resolves to a
    zero-copy view of the shared segment — pool workers hand their
    handle straight to the backend layer.
    """
    from repro.relational.store import resolve_table

    table = resolve_table(table)
    resolved = (name or default_backend_name()).strip().lower()
    if resolved == "columnar":
        return ColumnarBackend(table)
    if resolved == "sqlite":
        return SqliteBackend(table, table_name=table_name)
    raise BackendError(f"unknown execution backend {name!r}; known: {BACKEND_NAMES}")


def as_backend(source: "Table | ExecutionBackend") -> ExecutionBackend:
    """Coerce a table-or-backend argument to a backend.

    Bare tables get the zero-cost columnar adapter, which keeps every
    pre-backend call site working unchanged.
    """
    if isinstance(source, Table):
        return ColumnarBackend(source)
    return source
