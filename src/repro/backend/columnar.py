"""The in-process NumPy backend: a thin adapter over :class:`Table`.

This is the engine the reproduction always had — vectorized group-bys on
dictionary-encoded columns — repackaged behind the
:class:`~repro.backend.base.ExecutionBackend` contract with zero behavior
change.  ``statements_executed`` stays 0: nothing ever leaves the process,
which is exactly what made the paper's "queries sent to the DBMS" metric
vacuous before the backend split.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.backend.base import AggregateRequest, BackendCapabilities
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult, comparison_from_aggregate
from repro.relational.cube import MaterializedAggregate
from repro.relational.table import Table


class ColumnarBackend:
    """Vectorized in-memory execution over a :class:`Table`."""

    name = "columnar"
    capabilities = BackendCapabilities(
        sql_pushdown=False,
        zero_copy_scan=True,
        batched_aggregates=True,
        incremental_aggregates=True,
    )

    def __init__(self, table: Table):
        self._table = table
        self.statements_executed = 0

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "ColumnarBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Nothing to release: the backend borrows the caller's table."""

    def __repr__(self) -> str:
        return f"ColumnarBackend(rows={self._table.n_rows})"

    # -- contract -------------------------------------------------------------

    @property
    def table(self) -> Table:
        return self._table

    @property
    def storage(self) -> str:
        """Which data plane holds the columns (``heap`` or ``shm``)."""
        return self._table.storage

    @property
    def n_rows(self) -> int:
        return self._table.n_rows

    def distinct_values(self, attribute: str) -> tuple[str, ...]:
        column = self._table.categorical_column(attribute)
        present = np.unique(column.codes[column.codes >= 0])
        return tuple(sorted(column.categories[int(code)] for code in present))

    def scan(self, attributes: Sequence[str] | None = None) -> Table:
        if attributes is None:
            return self._table
        return self._table.project(list(attributes))

    def filter_equals(self, attribute: str, value: str) -> Table:
        return self._table.where_equal(attribute, value)

    def materialize_aggregate(
        self, attributes: Iterable[str], measures: Sequence[str] | None = None
    ) -> MaterializedAggregate:
        # Served from the table's cross-stage cache: a group-by materialized
        # during hypothesis evaluation is reused by credibility computation
        # and notebook rendering instead of being recomputed per stage.
        attrs = tuple(sorted(attributes))
        return self._table.aggregate_cache().get_or_build(
            self.name,
            attrs,
            measures,
            lambda: MaterializedAggregate.build(self._table, attrs, measures),
        )

    def materialize_aggregates(
        self, requests: Sequence[AggregateRequest]
    ) -> list[MaterializedAggregate]:
        """Batched group-bys fused into one pass over the base columns.

        Cache hits are served first; only the residual batch reaches the
        fused :meth:`MaterializedAggregate.build_many`, which shares the
        categorical code lookups and measure reads across all sets.  There
        is no engine statement here, but each fused pass is counted as one
        ``backend.batched_statements`` so plan shape is comparable across
        backends.
        """
        def compile_batch(residual):
            with obs.span(
                "backend.batch_compile", backend=self.name, sets=len(residual)
            ):
                obs.counter("backend.batched_statements").inc()
                obs.counter("backend.sets_per_statement").inc(len(residual))
                return MaterializedAggregate.build_many(self._table, residual)

        return self._table.aggregate_cache().get_or_build_batch(
            self.name,
            [(r.attributes, r.measures) for r in requests],
            compile_batch,
        )

    def evaluate_comparison(self, query: ComparisonQuery) -> ComparisonResult:
        query.validate_against(self._table)
        aggregate = self.materialize_aggregate(
            (query.group_by, query.selection_attribute), [query.measure]
        )
        return comparison_from_aggregate(aggregate, query)
