"""SQLite pushdown backend: hypothesis group-bys as real SQL statements.

The dataset is loaded once into an indexed SQLite table (stdlib
``sqlite3``, in-memory by default); every group-by aggregation and
comparison evaluation is then *pushed down* as a SQL statement generated
through :mod:`repro.sqlengine`'s AST and formatter — the same machinery
the notebook renderer uses — and executed by SQLite's own engine.

The pushed-down statement computes the additive summary columns
(``count / sum / sum-of-squares / min / max`` per measure), from which the
returned :class:`~repro.relational.cube.MaterializedAggregate` derives any
of the supported aggregates (count/sum/avg/min/max/var/stddev) exactly as
the columnar path does.  Group keys come back as labels and are re-encoded
against the base table's category dictionaries, so every downstream
consumer (pair views, roll-ups, interestingness) is bit-for-bit the same
code path as the columnar backend — parity to floating-point summation
order.

``statements_executed`` counts every SELECT sent to SQLite (loads and DDL
are excluded): this is the paper's "number of queries sent to the DBMS"
measured against an actual DBMS.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.backend.base import AggregateRequest, BackendCapabilities, BackendError
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult, comparison_from_aggregate
from repro.queries.sqlgen import sql_identifier
from repro.relational.aggregates import GroupedSummary
from repro.relational.cube import MaterializedAggregate
from repro.relational.table import Table
from repro.sqlengine.ast_nodes import (
    OrderItem,
    SelectItem,
    SelectStatement,
    SqlBinary,
    SqlFunction,
    SqlIsNull,
    SqlLiteral,
    SqlName,
    TableRef,
    UnionStatement,
)
from repro.sqlengine.formatter import format_statement


def _name(identifier: str) -> SqlName:
    """A (pre-quoted) column reference node for the emitted SQL."""
    return SqlName((sql_identifier(identifier),))


#: Most grouping-set arms fused into one compound statement.  SQLite caps
#: compound SELECT terms at 500 (SQLITE_MAX_COMPOUND_SELECT); 64 keeps
#: statements comfortably inside that with room for engines that compile
#: each arm separately, while still collapsing any realistic per-attribute
#: batch (one arm per selection attribute) into a single statement.
_MAX_BATCH_BRANCHES = 64


class SqliteBackend:
    """Pushdown execution over a stdlib :mod:`sqlite3` database.

    Parameters
    ----------
    table:
        The base relation; loaded once at construction.
    table_name:
        SQL name of the loaded table (appears in emitted statements).
    path:
        Database location; default ``":memory:"``.  A file path gives an
        on-disk database (useful for datasets larger than RAM).

    The connection is shared across threads behind a lock (the support
    phase may be threaded); statement accounting happens under the same
    lock, so ``statements_executed`` is exact under concurrency.
    """

    name = "sqlite"
    capabilities = BackendCapabilities(
        sql_pushdown=True, zero_copy_scan=False, batched_aggregates=True
    )

    def __init__(self, table: Table, table_name: str = "dataset", path: str | None = None):
        self._table = table
        self._table_name = table_name
        self._sql_table = sql_identifier(table_name)
        self._lock = threading.RLock()
        self._closed = False
        self.statements_executed = 0
        with obs.span("backend.load", backend=self.name, rows=table.n_rows):
            try:
                self._conn = sqlite3.connect(path or ":memory:", check_same_thread=False)
            except sqlite3.Error as exc:  # pragma: no cover - bad path only
                raise BackendError(f"cannot open sqlite database: {exc}") from exc
            self._load()

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    def __repr__(self) -> str:
        return (
            f"SqliteBackend(table={self._table_name!r}, rows={self._table.n_rows}, "
            f"statements={self.statements_executed})"
        )

    # -- loading --------------------------------------------------------------

    def _load(self) -> None:
        """Create, populate, and index the SQLite table (not counted as
        statements: the paper's metric counts queries, not the initial load)."""
        schema = self._table.schema
        column_defs = []
        for attr in schema:
            kind = "REAL" if attr.is_measure else "TEXT"
            column_defs.append(f"{sql_identifier(attr.name)} {kind}")
        cursor = self._conn.cursor()
        cursor.execute(f"CREATE TABLE {self._sql_table} ({', '.join(column_defs)})")
        columns: list[list[object]] = []
        for attr in schema:
            if attr.is_measure:
                data = self._table.measure_values(attr.name)
                columns.append([None if np.isnan(v) else float(v) for v in data])
            else:
                column = self._table.categorical_column(attr.name)
                lookup = list(column.categories)
                columns.append([None if c < 0 else lookup[c] for c in column.codes])
        placeholders = ", ".join("?" for _ in schema)
        cursor.executemany(
            f"INSERT INTO {self._sql_table} VALUES ({placeholders})",
            zip(*columns) if columns else [],
        )
        for index, attr_name in enumerate(schema.categorical_names):
            cursor.execute(
                f"CREATE INDEX idx_{self._table_name}_{index} "
                f"ON {self._sql_table} ({sql_identifier(attr_name)})"
            )
        self._conn.commit()

    # -- statement execution --------------------------------------------------

    def _execute(self, sql: str) -> list[tuple]:
        """Run one SELECT on the shared connection; count it."""
        with self._lock:
            if self._closed:
                raise BackendError("sqlite backend is closed")
            with obs.span("backend.statement", backend=self.name):
                try:
                    rows = self._conn.execute(sql).fetchall()
                except sqlite3.Error as exc:
                    raise BackendError(f"sqlite rejected pushed-down SQL: {exc}\n{sql}") from exc
            self.statements_executed += 1
        obs.counter("backend.statements_executed").inc()
        return rows

    # -- contract -------------------------------------------------------------

    @property
    def table(self) -> Table:
        return self._table

    @property
    def storage(self) -> str:
        """Plane of the *source* columns; the sqlite mirror is private."""
        return self._table.storage

    @property
    def n_rows(self) -> int:
        return self._table.n_rows

    def distinct_values(self, attribute: str) -> tuple[str, ...]:
        self._table.schema.require_categorical(attribute)
        statement = SelectStatement(
            items=(SelectItem(_name(attribute)),),
            from_items=(TableRef(self._sql_table),),
            where=SqlIsNull(_name(attribute), negated=True),
            distinct=True,
        )
        rows = self._execute(format_statement(statement))
        return tuple(sorted(str(value) for (value,) in rows))

    #: Orders row-returning statements so results come back in insertion
    #: order even when SQLite answers from an index (row-order parity with
    #: the columnar backend's scans).
    _ROWID_ORDER = (OrderItem(SqlName(("rowid",))),)

    def scan(self, attributes: Sequence[str] | None = None) -> Table:
        names = list(attributes) if attributes is not None else list(self._table.schema.names)
        statement = SelectStatement(
            items=tuple(SelectItem(_name(n)) for n in names),
            from_items=(TableRef(self._sql_table),),
            order_by=self._ROWID_ORDER,
        )
        rows = self._execute(format_statement(statement))
        return self._rows_to_table(names, rows)

    def filter_equals(self, attribute: str, value: str) -> Table:
        self._table.schema.require_categorical(attribute)
        names = list(self._table.schema.names)
        statement = SelectStatement(
            items=tuple(SelectItem(_name(n)) for n in names),
            from_items=(TableRef(self._sql_table),),
            where=SqlBinary("=", _name(attribute), SqlLiteral(str(value))),
            order_by=self._ROWID_ORDER,
        )
        rows = self._execute(format_statement(statement))
        return self._rows_to_table(names, rows)

    def _rows_to_table(self, names: Sequence[str], rows: list[tuple]) -> Table:
        schema = self._table.schema.subset(names)
        data: dict[str, list[object]] = {name: [] for name in names}
        for row in rows:
            for name, value in zip(names, row):
                data[name].append(value)
        return Table.from_columns(schema, data)

    # -- pushdown aggregation -------------------------------------------------

    def _aggregate_statement(self, attributes: Sequence[str], measures: Sequence[str]) -> str:
        """The pushed-down SQL: one group-by computing additive summaries."""
        key_refs = tuple(_name(a) for a in attributes)
        items = [SelectItem(ref) for ref in key_refs]
        for measure in measures:
            ref = _name(measure)
            items.extend(
                (
                    SelectItem(SqlFunction("count", (ref,))),
                    SelectItem(SqlFunction("sum", (ref,))),
                    SelectItem(SqlFunction("sum", (SqlBinary("*", ref, ref),))),
                    SelectItem(SqlFunction("min", (ref,))),
                    SelectItem(SqlFunction("max", (ref,))),
                )
            )
        statement = SelectStatement(
            items=tuple(items),
            from_items=(TableRef(self._sql_table),),
            group_by=key_refs,
        )
        return format_statement(statement)

    def materialize_aggregate(
        self, attributes: Iterable[str], measures: Sequence[str] | None = None
    ) -> MaterializedAggregate:
        # Cache hits save real pushed-down statements: the cache key carries
        # the backend name, so sqlite-built aggregates (whose group order is
        # the engine's) never serve columnar requests or vice versa.
        attrs = tuple(sorted(attributes))
        return self._table.aggregate_cache().get_or_build(
            self.name,
            attrs,
            measures,
            lambda: self._materialize_uncached(attrs, measures),
        )

    def _materialize_uncached(
        self, attrs: tuple[str, ...], measures: Sequence[str] | None
    ) -> MaterializedAggregate:
        for attr_name in attrs:
            self._table.schema.require_categorical(attr_name)
        if measures is None:
            measures = self._table.schema.measure_names
        rows = self._execute(self._aggregate_statement(attrs, measures))
        attr_pos = {attr_name: axis for axis, attr_name in enumerate(attrs)}
        measure_base = {m: len(attrs) + 5 * i for i, m in enumerate(measures)}
        return self._rows_to_aggregate(attrs, measures, rows, attr_pos, measure_base)

    def _rows_to_aggregate(
        self,
        attrs: tuple[str, ...],
        measures: Sequence[str],
        rows: list[tuple],
        attr_pos: dict[str, int],
        measure_base: dict[str, int],
    ) -> MaterializedAggregate:
        """Parse SQLite result rows into a :class:`MaterializedAggregate`.

        ``attr_pos`` / ``measure_base`` map each key attribute and measure to
        its column position, so the same parse serves both the per-set
        statement (dense layout) and the UNION-ALL batch statement (sparse
        layout padded with NULL columns for attrs/measures of other sets).
        """
        n_groups = len(rows)
        columns = {attr_name: self._table.categorical_column(attr_name) for attr_name in attrs}
        keys = tuple(
            np.fromiter(
                (
                    -1
                    if row[attr_pos[attr_name]] is None
                    else columns[attr_name].code_of(str(row[attr_pos[attr_name]]))
                    for row in rows
                ),
                dtype=np.int64,
                count=n_groups,
            )
            for attr_name in attrs
        )
        summaries: dict[str, GroupedSummary] = {}
        for measure in measures:
            base = measure_base[measure]
            count = np.fromiter(
                (float(row[base]) for row in rows), dtype=np.float64, count=n_groups
            )
            # SUM over an all-NULL group is NULL; the additive summaries use
            # 0.0 there (count == 0 marks the group empty), min/max use NaN.
            total = np.fromiter(
                (0.0 if row[base + 1] is None else float(row[base + 1]) for row in rows),
                dtype=np.float64,
                count=n_groups,
            )
            total_sq = np.fromiter(
                (0.0 if row[base + 2] is None else float(row[base + 2]) for row in rows),
                dtype=np.float64,
                count=n_groups,
            )
            minimum = np.fromiter(
                (np.nan if row[base + 3] is None else float(row[base + 3]) for row in rows),
                dtype=np.float64,
                count=n_groups,
            )
            maximum = np.fromiter(
                (np.nan if row[base + 4] is None else float(row[base + 4]) for row in rows),
                dtype=np.float64,
                count=n_groups,
            )
            summaries[measure] = GroupedSummary(count, total, total_sq, minimum, maximum)
        categories = {
            attr_name: self._table.categorical_column(attr_name).categories
            for attr_name in attrs
        }
        return MaterializedAggregate(attrs, keys, categories, summaries)

    # -- batched pushdown aggregation (multi-query optimization) --------------

    def materialize_aggregates(
        self, requests: Sequence[AggregateRequest]
    ) -> list[MaterializedAggregate]:
        """Batched group-bys compiled into one compound statement per chunk.

        Cache hits never reach the engine; the residual batch is compiled by
        :meth:`_materialize_batch_uncached` into UNION-ALL grouping-set
        statements, collapsing ``statements_executed`` from one per set to
        one per :data:`_MAX_BATCH_BRANCHES` sets.
        """
        return self._table.aggregate_cache().get_or_build_batch(
            self.name,
            [(r.attributes, r.measures) for r in requests],
            self._materialize_batch_uncached,
        )

    def _materialize_batch_uncached(
        self, residual: Sequence[tuple[tuple[str, ...], Sequence[str] | None]]
    ) -> list[MaterializedAggregate]:
        resolved: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
        for attributes, measures in residual:
            attrs = tuple(sorted(attributes))
            for attr_name in attrs:
                self._table.schema.require_categorical(attr_name)
            if measures is None:
                measures = self._table.schema.measure_names
            resolved.append((attrs, tuple(measures)))
        out: list[MaterializedAggregate] = []
        for start in range(0, len(resolved), _MAX_BATCH_BRANCHES):
            out.extend(self._compile_chunk(resolved[start : start + _MAX_BATCH_BRANCHES]))
        return out

    def _compile_chunk(
        self, chunk: list[tuple[tuple[str, ...], tuple[str, ...]]]
    ) -> list[MaterializedAggregate]:
        """One compound statement answering every grouping set of ``chunk``.

        The statement is a UNION ALL of grouped subselects over a *uniform
        column grid*: a grouping-set tag, every key attribute appearing in
        any set (NULL-padded where absent), then the five summary columns of
        every measure appearing in any set (NULL-padded likewise).  Each arm
        is the exact per-set statement projected into the grid, so SQLite
        plans it like the standalone query; demultiplexing by tag recovers
        per-set aggregates element-for-element identical to per-set calls —
        a padded NULL is never mistaken for a NULL group value because each
        set's parse only reads the columns of its own attributes/measures.
        """
        union_attrs = sorted({a for attrs, _ in chunk for a in attrs})
        union_measures = sorted({m for _, ms in chunk for m in ms})
        with obs.span(
            "backend.batch_compile", backend=self.name, sets=len(chunk)
        ):
            sql = self._batch_statement(chunk, union_attrs, union_measures)
            rows = self._execute(sql)
        obs.counter("backend.batched_statements").inc()
        obs.counter("backend.sets_per_statement").inc(len(chunk))
        by_tag: dict[int, list[tuple]] = {tag: [] for tag in range(len(chunk))}
        for row in rows:
            by_tag[int(row[0])].append(row)
        results: list[MaterializedAggregate] = []
        for tag, (attrs, measures) in enumerate(chunk):
            attr_pos = {a: 1 + union_attrs.index(a) for a in attrs}
            measure_base = {
                m: 1 + len(union_attrs) + 5 * union_measures.index(m) for m in measures
            }
            results.append(
                self._rows_to_aggregate(attrs, measures, by_tag[tag], attr_pos, measure_base)
            )
        return results

    def _batch_statement(
        self,
        chunk: list[tuple[tuple[str, ...], tuple[str, ...]]],
        union_attrs: list[str],
        union_measures: list[str],
    ) -> str:
        arms: list[SelectStatement] = []
        for tag, (attrs, measures) in enumerate(chunk):
            items = [SelectItem(SqlLiteral(str(tag)), alias="grouping_set")]
            for attr_name in union_attrs:
                items.append(
                    SelectItem(_name(attr_name) if attr_name in attrs else SqlLiteral(None))
                )
            for measure in union_measures:
                if measure in measures:
                    ref = _name(measure)
                    items.extend(
                        (
                            SelectItem(SqlFunction("count", (ref,))),
                            SelectItem(SqlFunction("sum", (ref,))),
                            SelectItem(SqlFunction("sum", (SqlBinary("*", ref, ref),))),
                            SelectItem(SqlFunction("min", (ref,))),
                            SelectItem(SqlFunction("max", (ref,))),
                        )
                    )
                else:
                    items.extend(SelectItem(SqlLiteral(None)) for _ in range(5))
            arms.append(
                SelectStatement(
                    items=tuple(items),
                    from_items=(TableRef(self._sql_table),),
                    group_by=tuple(_name(a) for a in attrs),
                )
            )
        if len(arms) == 1:
            return format_statement(arms[0])
        return format_statement(UnionStatement(tuple(arms), all=True))

    def evaluate_comparison(self, query: ComparisonQuery) -> ComparisonResult:
        query.validate_against(self._table)
        aggregate = self.materialize_aggregate(
            (query.group_by, query.selection_attribute), [query.measure]
        )
        return comparison_from_aggregate(aggregate, query)
