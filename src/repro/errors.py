"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the more precise
subclasses below; none of them should ever leak a bare ``ValueError`` for a
condition that is part of the documented API contract.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute lookup failed."""


class TypeInferenceError(ReproError):
    """CSV type inference could not settle on a column type."""


class QueryError(ReproError):
    """A relational or comparison query is invalid for its target relation."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be tokenized or parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the SQL source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PlanningError(QueryError):
    """The SQL AST is syntactically valid but cannot be planned."""


class ExecutionError(QueryError):
    """A physical operator failed while evaluating a plan."""


class StatisticsError(ReproError):
    """A statistical test received invalid input (e.g. empty samples)."""


class SamplingError(StatisticsError):
    """A sampling strategy received an invalid rate or empty relation."""


class InsightError(ReproError):
    """An insight definition is inconsistent with its relation."""


class DeadlineExceeded(ReproError):
    """A cooperative cancellation checkpoint fired past the run deadline.

    Raised by stage loops when the shared wall-clock deadline expires; the
    resilient run controller catches it and falls back to a cheaper rung of
    the stage's degradation ladder instead of losing the run.
    """

    def __init__(self, message: str, stage: str | None = None):
        super().__init__(message)
        self.stage = stage


class TAPError(ReproError):
    """A TAP instance or solver configuration is invalid."""


class SolverTimeout(TAPError):
    """The exact TAP solver exceeded its time budget.

    The best incumbent found so far is attached, when one exists, so that
    callers can degrade gracefully to an anytime result.
    """

    def __init__(self, message: str, incumbent=None):
        super().__init__(message)
        self.incumbent = incumbent


class NotebookError(ReproError):
    """Notebook rendering failed (e.g. empty sequence of queries)."""


class ServeError(ReproError):
    """A serving-layer (``repro.serve``) request cannot be satisfied."""


class UnknownDatasetError(ServeError):
    """The request names a dataset that is not (or no longer) registered."""


class AdmissionRejected(ServeError):
    """Admission control shed the request (queue depth or cost budget).

    Attributes
    ----------
    reason:
        Machine-readable shed reason (``queue-full``, ``cost-budget``,
        ``injected``, ``circuit-open``).
    """

    def __init__(self, message: str, reason: str = "queue-full"):
        super().__init__(message)
        self.reason = reason


class CircuitOpen(ServeError):
    """The dataset's circuit breaker is open; the request was not run."""


class DatasetError(ReproError):
    """A synthetic dataset specification is invalid."""
