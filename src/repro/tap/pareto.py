"""ε-constraint sweep over the distance bound (Section 5.3).

"Varying ε_d allows to generate different points on the Pareto front of
the original multi-objective problem" — this module runs a solver across a
grid of ε_d values and keeps the non-dominated (interest ↑, distance ↓)
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TAPError
from repro.tap.exact import ExactConfig, solve_exact
from repro.tap.heuristic import HeuristicConfig, solve_heuristic
from repro.tap.instance import TAPInstance, TAPSolution


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    epsilon_distance: float
    solution: TAPSolution

    @property
    def interest(self) -> float:
        return self.solution.interest

    @property
    def distance(self) -> float:
        return self.solution.distance


def sweep_epsilon(
    instance: TAPInstance,
    budget: float,
    epsilon_grid: Sequence[float],
    solver: str = "heuristic",
    timeout_seconds: float | None = None,
) -> list[ParetoPoint]:
    """One solve per ε_d value, in increasing ε_d order."""
    if not epsilon_grid:
        raise TAPError("epsilon_grid must not be empty")
    points = []
    for epsilon in sorted(epsilon_grid):
        if solver == "heuristic":
            solution = solve_heuristic(instance, HeuristicConfig(budget, epsilon))
        elif solver == "exact":
            outcome = solve_exact(
                instance, ExactConfig(budget, epsilon, timeout_seconds=timeout_seconds)
            )
            solution = outcome.solution
        else:
            raise TAPError(f"unknown solver {solver!r}")
        points.append(ParetoPoint(float(epsilon), solution))
    return points


def pareto_front(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset: no other point has ≥ interest and ≤ distance."""
    front: list[ParetoPoint] = []
    for p in points:
        dominated = any(
            (q.interest >= p.interest and q.distance < p.distance)
            or (q.interest > p.interest and q.distance <= p.distance)
            for q in points
            if q is not p
        )
        if not dominated:
            front.append(p)
    # Deduplicate identical (interest, distance) pairs.
    seen: set[tuple[float, float]] = set()
    unique = []
    for p in front:
        key = (round(p.interest, 12), round(p.distance, 12))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique
