"""Artificial TAP instances (Section 6.2's protocol).

The paper evaluates the exact solver and the heuristic on "artificial sets
of queries of different sizes ... keeping similar uniform distributions of
interestingness, cost, and distances".  Two generators are provided; both
yield genuine metrics (a requirement of Section 4.2):

* :func:`random_hamming_instance` — random synthetic comparison-query
  tuples scored with the weighted Hamming distance of the real pipeline
  (the distribution the production system actually sees);
* :func:`random_euclidean_instance` — uniform points in the unit square
  with Euclidean distance (a smoother metric for solver stress tests).

Interest is U(0, 1); cost is uniform 1 (the paper's simplification) unless
``uniform_cost=False``, in which case cost ~ U(0.5, 1.5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TAPError
from repro.queries.comparison import ComparisonQuery
from repro.queries.distance import DEFAULT_WEIGHTS, DistanceWeights, query_distance
from repro.stats.rng import derive_rng
from repro.tap.instance import TAPInstance


def random_euclidean_instance(
    n: int, seed: int, uniform_cost: bool = True
) -> TAPInstance[int]:
    """Uniform points in [0,1]² with Euclidean pairwise distance."""
    if n <= 0:
        raise TAPError("instance size must be positive")
    rng = derive_rng(seed, "tap-euclid", n)
    points = rng.random((n, 2))
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))
    interests = rng.random(n)
    costs = np.ones(n) if uniform_cost else rng.uniform(0.5, 1.5, n)
    return TAPInstance(list(range(n)), interests, costs, distances)


def random_comparison_queries(
    n: int,
    rng: np.random.Generator,
    n_attributes: int = 6,
    n_values: int = 12,
    n_measures: int = 2,
    aggregates: tuple[str, ...] = ("sum", "avg"),
) -> list[ComparisonQuery]:
    """Draw ``n`` distinct random comparison queries over a synthetic schema."""
    attributes = [f"a{i}" for i in range(n_attributes)]
    measures = [f"m{i}" for i in range(n_measures)]
    seen: set[tuple] = set()
    queries: list[ComparisonQuery] = []
    attempts = 0
    while len(queries) < n:
        attempts += 1
        if attempts > 200 * n:
            raise TAPError(
                f"could not draw {n} distinct queries from the synthetic schema; "
                "increase n_attributes/n_values"
            )
        b_idx, a_idx = rng.choice(n_attributes, size=2, replace=False)
        v1, v2 = rng.choice(n_values, size=2, replace=False)
        query = ComparisonQuery(
            group_by=attributes[int(a_idx)],
            selection_attribute=attributes[int(b_idx)],
            val=f"v{int(v1)}",
            val_other=f"v{int(v2)}",
            measure=measures[int(rng.integers(n_measures))],
            agg=aggregates[int(rng.integers(len(aggregates)))],
        )
        if query.key in seen:
            continue
        seen.add(query.key)
        queries.append(query)
    return queries


def random_clustered_instance(
    n: int,
    seed: int,
    n_clusters: int = 6,
    cluster_spread: float = 0.03,
    center_separation: float = 0.4,
    priority_noise: float = 1.0,
    uniform_cost: bool = True,
) -> TAPInstance[int]:
    """Euclidean instance with *theme clusters* of interleaved interest.

    In the real pipeline interest is correlated with distance: comparison
    queries at small weighted-Hamming distance share selection pairs and
    therefore evidence overlapping insight sets, so their Definition-4.3
    scores move together, and the query space decomposes into "themes"
    (one per strong selection pair) of roughly equally interesting
    queries.  This generator reproduces that structure:

    * points are drawn around ``n_clusters`` well-separated centres
      (themes) with Gaussian spread ``cluster_spread``;
    * global interest *ranks* are dealt round-robin across clusters, so
      every cluster holds one of the top-``n_clusters`` queries, one of
      the next ``n_clusters``, and so on — clusters are near-equal;
    * within each round, the deal order follows a fixed per-instance
      cluster priority perturbed by Gumbel noise of scale
      ``priority_noise`` — strong themes tend to stay strong across
      levels, with per-level upsets, like dominant selection pairs in a
      real dataset.

    Consequences (the regime of Tables 5 and 6): under a tight ε_d the
    optimal solution lives inside a single cluster; the interest-first
    heuristic anchors at the globally best query, which usually belongs
    to the best theme, so its objective deviation is small — while the
    top-k baseline scatters one pick per theme and its recall collapses
    toward ~1/n_clusters.
    """
    if n <= 0:
        raise TAPError("instance size must be positive")
    if n_clusters < 2 or n < n_clusters:
        raise TAPError("need at least 2 clusters and n >= n_clusters")
    rng = derive_rng(seed, "tap-clustered", n)
    centers = _separated_centers(n_clusters, rng, min_separation=center_separation)
    cluster_of = rng.integers(n_clusters, size=n)
    # Guarantee no empty cluster (round-robin the first n_clusters points).
    cluster_of[:n_clusters] = np.arange(n_clusters)
    points = centers[cluster_of] + rng.normal(0.0, cluster_spread, (n, 2))
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))

    # Deal global rank positions round-robin over clusters.
    members: list[list[int]] = [[] for _ in range(n_clusters)]
    for idx, c in enumerate(cluster_of):
        members[int(c)].append(idx)
    for cluster in members:
        rng.shuffle(cluster)
    position = np.empty(n, dtype=np.int64)
    base_priority = rng.permutation(n_clusters).astype(np.float64)
    cursor = 0
    level = 0
    while cursor < n:
        noisy = base_priority + rng.gumbel(0.0, priority_noise, n_clusters)
        order = np.argsort(noisy)
        for c in order:
            if level < len(members[c]):
                position[members[c][level]] = cursor
                cursor += 1
        level += 1
    interests = 1.0 - (position + 1.0) / (n + 2.0)
    costs = np.ones(n) if uniform_cost else rng.uniform(0.5, 1.5, n)
    return TAPInstance(list(range(n)), interests, costs, distances)


def _separated_centers(
    n_clusters: int, rng: np.random.Generator, min_separation: float
) -> np.ndarray:
    """Cluster centres in [0.1, 0.9]² with pairwise separation (best effort)."""
    centers: list[np.ndarray] = []
    attempts = 0
    while len(centers) < n_clusters:
        candidate = rng.random(2) * 0.8 + 0.1
        attempts += 1
        separation = min_separation if attempts < 300 * n_clusters else 0.0
        if all(np.linalg.norm(candidate - c) >= separation for c in centers):
            centers.append(candidate)
    return np.asarray(centers)


def random_hamming_instance(
    n: int,
    seed: int,
    uniform_cost: bool = True,
    weights: DistanceWeights = DEFAULT_WEIGHTS,
) -> TAPInstance[ComparisonQuery]:
    """Random comparison queries with the production weighted-Hamming metric."""
    if n <= 0:
        raise TAPError("instance size must be positive")
    rng = derive_rng(seed, "tap-hamming", n)
    queries = random_comparison_queries(n, rng)
    distances = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = query_distance(queries[i], queries[j], weights)
            distances[i, j] = d
            distances[j, i] = d
    interests = rng.random(n)
    costs = np.ones(n) if uniform_cost else rng.uniform(0.5, 1.5, n)
    return TAPInstance(queries, interests, costs, distances)
