"""Traveling Analyst Problem: instances, exact solver, heuristic, baseline."""

from repro.tap.baseline import solve_baseline
from repro.tap.exact import ExactConfig, ExactOutcome, solve_exact
from repro.tap.heuristic import HeuristicConfig, solve_heuristic, solve_heuristic_lazy
from repro.tap.instance import TAPInstance, TAPSolution, make_solution, validate_solution
from repro.tap.pareto import ParetoPoint, pareto_front, sweep_epsilon
from repro.tap.path import (
    MAX_EXACT_PATH,
    best_insertion_order,
    best_insertion_position,
    held_karp_path,
    min_path_length,
    mst_lower_bound,
)
from repro.tap.random_instances import (
    random_clustered_instance,
    random_comparison_queries,
    random_euclidean_instance,
    random_hamming_instance,
)

__all__ = [
    "MAX_EXACT_PATH",
    "ExactConfig",
    "ExactOutcome",
    "HeuristicConfig",
    "ParetoPoint",
    "TAPInstance",
    "TAPSolution",
    "best_insertion_order",
    "best_insertion_position",
    "held_karp_path",
    "make_solution",
    "min_path_length",
    "mst_lower_bound",
    "pareto_front",
    "random_clustered_instance",
    "random_comparison_queries",
    "random_euclidean_instance",
    "random_hamming_instance",
    "solve_baseline",
    "solve_exact",
    "solve_heuristic",
    "solve_heuristic_lazy",
    "sweep_epsilon",
    "validate_solution",
]
