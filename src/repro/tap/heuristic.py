"""Algorithm 3: the sort-by-efficiency + best-insertion TAP heuristic.

The paper adapts Dantzig's classic "sort by item efficiency" knapsack
heuristic: queries are sorted by ``interest/cost`` decreasing; each query
in turn is inserted at the position of the current sequence minimizing the
total distance, and kept iff the cost budget and the ε_d distance bound
both still hold.  With uniform costs this degenerates to sorting by
interest, and ε_t simply bounds the notebook length (Section 5.3).

Complexity: the sort dominates at O(N log N); each accepted insertion is
O(M) for a solution of length M ≪ N.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro import obs
from repro.errors import TAPError
from repro.runtime.deadline import Deadline
from repro.tap.instance import TAPInstance, TAPSolution, make_solution
from repro.tap.path import best_insertion_position

logger = logging.getLogger(__name__)

_EPS = 1e-9

#: Deadline polls happen every this many ranked items: the heuristic is
#: naturally anytime, so on expiry it just stops inserting and returns the
#: (valid) sequence built so far.
_DEADLINE_STRIDE = 64

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class HeuristicConfig:
    """Settings for Algorithm 3.

    ``best_insertion=False`` is the append-only ablation: a query may only
    be appended at the end of the sequence instead of inserted anywhere.
    """

    budget: float
    epsilon_distance: float
    best_insertion: bool = True

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise TAPError("budget must be positive")
        if self.epsilon_distance < 0:
            raise TAPError("epsilon_distance must be non-negative")


def solve_heuristic(instance: TAPInstance, config: HeuristicConfig) -> TAPSolution:
    """Run Algorithm 3 and score the resulting sequence."""
    with obs.span("tap.heuristic", n=instance.n, lazy=False) as sp:
        weights = instance.interests / instance.costs
        ranked = np.argsort(-weights, kind="stable")

        order: list[int] = []
        total_distance = 0.0
        cost_used = 0.0
        for raw in ranked:
            q = int(raw)
            if cost_used + float(instance.costs[q]) > config.budget + _EPS:
                continue
            if config.best_insertion:
                position, delta = best_insertion_position(instance.distances, order, q)
            else:
                position = len(order)
                delta = float(instance.distances[order[-1], q]) if order else 0.0
            if total_distance + delta > config.epsilon_distance + _EPS:
                continue
            order.insert(position, q)
            total_distance += delta
            cost_used += float(instance.costs[q])
        sp.set(selected=len(order))
    obs.counter("tap.heuristic.insertions").inc(len(order))
    obs.counter("tap.heuristic.scanned").inc(instance.n)
    return make_solution(instance, order, optimal=False, solve_seconds=sp.duration)


def solve_heuristic_lazy(
    interests: Sequence[float],
    costs: Sequence[float],
    distance_of: Callable[[int, int], float],
    config: HeuristicConfig,
    deadline: Deadline | None = None,
) -> TAPSolution:
    """Algorithm 3 with on-the-fly distances (no N×N matrix).

    This is the memory-efficient form the paper highlights for "large
    datasets that will yield hundreds of thousands of insights": only
    O(M · N) distance evaluations happen for a solution of length M, and
    nothing quadratic in N is ever materialized.

    ``deadline`` makes the pass anytime: past the deadline the scan stops
    and the sequence built so far is returned (always budget-feasible).
    """
    interests = np.asarray(interests, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if interests.shape != costs.shape:
        raise TAPError("interests and costs must align")
    if np.any(costs <= 0):
        raise TAPError("costs must be positive")
    with obs.span("tap.heuristic", n=int(interests.size), lazy=True) as sp:
        ranked = np.argsort(-(interests / costs), kind="stable")

        order: list[int] = []
        total_distance = 0.0
        cost_used = 0.0
        truncated = False
        scanned = 0
        for scanned, raw in enumerate(ranked):
            if (
                deadline is not None
                and scanned % _DEADLINE_STRIDE == 0
                and deadline.expired
            ):
                truncated = True
                break
            q = int(raw)
            if cost_used + float(costs[q]) > config.budget + _EPS:
                continue
            position, delta = _lazy_best_insertion(order, q, distance_of, config.best_insertion)
            if total_distance + delta > config.epsilon_distance + _EPS:
                continue
            order.insert(position, q)
            total_distance += delta
            cost_used += float(costs[q])
        sp.set(selected=len(order), truncated=truncated)
    elapsed = sp.duration
    obs.counter("tap.heuristic.insertions").inc(len(order))
    obs.counter("tap.heuristic.scanned").inc(int(interests.size))
    if truncated:
        logger.warning("heuristic TAP pass stopped at the deadline after %.3fs "
                       "(%d queries selected)", elapsed, len(order))
    interest = float(interests[order].sum()) if order else 0.0
    return TAPSolution(
        tuple(order), interest, cost_used, total_distance, optimal=False, solve_seconds=elapsed
    )


def _lazy_best_insertion(
    order: list[int],
    new: int,
    distance_of: Callable[[int, int], float],
    best_insertion: bool,
) -> tuple[int, float]:
    if not order:
        return 0, 0.0
    if not best_insertion:
        return len(order), float(distance_of(order[-1], new))
    best_pos = 0
    best_delta = float(distance_of(new, order[0]))
    tail = float(distance_of(order[-1], new))
    if tail < best_delta:
        best_pos, best_delta = len(order), tail
    for p in range(1, len(order)):
        a, b = order[p - 1], order[p]
        delta = float(distance_of(a, new) + distance_of(new, b) - distance_of(a, b))
        if delta < best_delta:
            best_pos, best_delta = p, delta
    return best_pos, best_delta
