"""Exact TAP resolution by branch-and-bound (the CPLEX substitute).

The paper solves the ε-constraint form of the TAP with a MILP on CPLEX
(Section 5.3): maximize total interest subject to the cost budget ε_t and
``Σ dist(q_i, q_{i+1}) <= ε_d``.  This module solves the same problem
exactly in pure Python:

* items are explored in decreasing interest order with an include/exclude
  branch-and-bound;
* the upper bound is the fractional-knapsack relaxation of the remaining
  interest under the remaining cost budget;
* distance feasibility of a partial selection prunes via the MST lower
  bound first (cheap) and the exact Held-Karp minimum path second — sound
  because with a metric distance the minimum Hamiltonian path length is
  monotone non-decreasing in the selected set;
* ties on interest are broken toward smaller path distance, matching the
  bi-objective reading of Definition 4.1.

A wall-clock timeout makes the solver anytime: on expiry it reports the
incumbent with ``optimal=False`` (this is how Table 4's "%Timeouts" column
is reproduced).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SolverTimeout, TAPError
from repro.tap.instance import TAPInstance, TAPSolution, make_solution
from repro.tap.path import best_insertion_order, held_karp_path, mst_lower_bound

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class ExactConfig:
    """Settings for the exact solver.

    ``budget`` is ε_t (with uniform unit costs this is the notebook
    length); ``epsilon_distance`` is ε_d; ``timeout_seconds`` bounds the
    wall clock (None = no limit).
    """

    #: Above this selected-set size the feasibility check degrades to the
    #: greedy upper bound (see ``_Search._path_check``); 12 keeps a single
    #: Held-Karp call well under a second in pure Python.
    DEFAULT_PATH_LIMIT = 12

    budget: float
    epsilon_distance: float
    timeout_seconds: float | None = None
    exact_path_limit: int = DEFAULT_PATH_LIMIT
    #: When True, a timeout raises :class:`~repro.errors.SolverTimeout`
    #: carrying the anytime incumbent instead of returning it silently —
    #: the contract the resilient runtime's degradation ladder consumes.
    raise_on_timeout: bool = False

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise TAPError("budget must be positive")
        if self.epsilon_distance < 0:
            raise TAPError("epsilon_distance must be non-negative")


@dataclass(frozen=True, slots=True)
class ExactOutcome:
    """Solver result: the best solution found plus proof status."""

    solution: TAPSolution
    timed_out: bool
    nodes_explored: int
    solve_seconds: float


_EPS = 1e-9


class _Search:
    def __init__(self, instance: TAPInstance, config: ExactConfig):
        self.instance = instance
        self.config = config
        # Branch order: decreasing interest (the paper's MILP has no order,
        # but for B&B this makes the knapsack bound tight early).
        self.order = np.argsort(-instance.interests, kind="stable")
        self.interests = instance.interests[self.order]
        self.costs = instance.costs[self.order]
        # Ratio order for the fractional bound.
        self.deadline = (
            time.perf_counter() + config.timeout_seconds
            if config.timeout_seconds is not None
            else None
        )
        self.best_interest = -1.0
        self.best_distance = float("inf")
        self.best_order: list[int] = []
        self.nodes = 0
        self.timed_out = False
        self.approximate_paths = False
        # Suffix structures for the bound: items from position k onward,
        # sorted by interest/cost ratio.
        n = instance.n
        self._suffix_ratio_order: list[np.ndarray] = []
        for k in range(n + 1):
            tail = np.arange(k, n)
            ratios = self.interests[tail] / self.costs[tail]
            self._suffix_ratio_order.append(tail[np.argsort(-ratios, kind="stable")])

    def run(self) -> None:
        self._dfs(0, [], 0.0, 0.0)

    # -- bounding --------------------------------------------------------------

    def _upper_bound(self, k: int, interest: float, cost_used: float) -> float:
        remaining = self.config.budget - cost_used
        bound = interest
        for idx in self._suffix_ratio_order[k]:
            c = self.costs[idx]
            if c <= remaining:
                bound += self.interests[idx]
                remaining -= c
            else:
                if remaining > 0:
                    bound += self.interests[idx] * remaining / c
                break
        return bound

    # -- feasibility -------------------------------------------------------------

    def _path_check(self, chosen: list[int]) -> tuple[bool, float, list[int]]:
        """(feasible, exact length, exact order) for the chosen set."""
        subset = [int(self.order[i]) for i in chosen]
        if len(subset) <= 1:
            return True, 0.0, subset
        if mst_lower_bound(self.instance.distances, subset) > self.config.epsilon_distance + _EPS:
            return False, float("inf"), []
        if len(subset) > self.config.exact_path_limit:
            # Beyond the Held-Karp limit the path check degrades to the
            # greedy best-insertion *upper bound*: accepted sets are still
            # genuinely feasible, but pruning may discard feasible sets, so
            # optimality can no longer be proven (the outcome is flagged).
            self.approximate_paths = True
            order = best_insertion_order(self.instance.distances, subset)
            length = float(
                sum(
                    self.instance.distances[order[i], order[i + 1]]
                    for i in range(len(order) - 1)
                )
            )
            return length <= self.config.epsilon_distance + _EPS, length, order
        length, path = held_karp_path(self.instance.distances, subset)
        return length <= self.config.epsilon_distance + _EPS, length, path

    # -- search ------------------------------------------------------------------

    def _dfs(self, k: int, chosen: list[int], interest: float, cost_used: float) -> None:
        if self.timed_out:
            return
        self.nodes += 1
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.timed_out = True
            return
        if k >= self.instance.n:
            return
        if self._upper_bound(k, interest, cost_used) < self.best_interest - _EPS:
            return
        # Include branch first (high interest first drives incumbents up fast).
        cost_k = float(self.costs[k])
        if cost_used + cost_k <= self.config.budget + _EPS:
            chosen.append(k)
            feasible, length, path = self._path_check(chosen)
            if feasible:
                new_interest = interest + float(self.interests[k])
                if new_interest > self.best_interest + _EPS or (
                    abs(new_interest - self.best_interest) <= _EPS
                    and length < self.best_distance - _EPS
                ):
                    self.best_interest = new_interest
                    self.best_distance = length
                    self.best_order = path
                self._dfs(k + 1, chosen, new_interest, cost_used + cost_k)
            chosen.pop()
        if self.timed_out:
            return
        self._dfs(k + 1, chosen, interest, cost_used)


def solve_exact(instance: TAPInstance, config: ExactConfig) -> ExactOutcome:
    """Solve the ε-constraint TAP to optimality (or timeout).

    The empty sequence is always feasible, so the outcome always carries a
    valid (possibly empty) solution.
    """
    logger.debug("exact B&B: n=%d budget=%g eps_d=%g timeout=%s",
                 instance.n, config.budget, config.epsilon_distance,
                 config.timeout_seconds)
    with obs.span("tap.exact", n=instance.n, budget=config.budget) as sp:
        search = _Search(instance, config)
        search.run()
        sp.set(nodes=search.nodes, timed_out=search.timed_out)
    elapsed = sp.duration
    obs.counter("tap.exact.nodes").inc(search.nodes)
    obs.counter("tap.exact.solves").inc()
    if search.timed_out:
        obs.counter("tap.exact.timeouts").inc()
    order = search.best_order if search.best_interest > 0 else []
    solution = make_solution(
        instance,
        order,
        optimal=not search.timed_out and not search.approximate_paths,
        solve_seconds=elapsed,
        nodes_explored=search.nodes,
    )
    if search.timed_out:
        logger.warning("exact B&B timed out after %.3fs (%d nodes); "
                       "incumbent interest=%.4f", elapsed, search.nodes,
                       solution.interest)
        if config.raise_on_timeout:
            raise SolverTimeout(
                f"exact TAP solver exceeded {config.timeout_seconds}s "
                f"({search.nodes} nodes explored)",
                incumbent=solution,
            )
    else:
        logger.info("exact B&B solved in %.3fs (%d nodes, optimal=%s)",
                    elapsed, search.nodes, solution.optimal)
    return ExactOutcome(solution, search.timed_out, search.nodes, elapsed)
