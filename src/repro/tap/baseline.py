"""The top-k baseline of Section 6.4.

"A baseline consisting of picking the top ε_t queries in terms of
interestingness" — no distance awareness at all.  Used as the comparison
arm of the recall experiment (Table 6).
"""

from __future__ import annotations

import logging
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import TAPError
from repro.tap.instance import TAPInstance, TAPSolution, make_solution

logger = logging.getLogger(__name__)

_EPS = 1e-9


def solve_baseline(instance: TAPInstance, budget: float) -> TAPSolution:
    """Greedily take the most interesting queries until the budget is spent.

    The sequence is emitted in decreasing-interest order (the baseline has
    no notion of browsing distance), so its total distance is whatever it
    happens to be.
    """
    if budget <= 0:
        raise TAPError("budget must be positive")
    ranked = np.argsort(-instance.interests, kind="stable")
    order: list[int] = []
    cost_used = 0.0
    for raw in ranked:
        q = int(raw)
        if cost_used + float(instance.costs[q]) > budget + _EPS:
            continue
        order.append(q)
        cost_used += float(instance.costs[q])
    logger.debug("top-k baseline selected %d of %d queries", len(order), instance.n)
    return make_solution(instance, order, optimal=False)


def solve_baseline_lazy(
    interests: Sequence[float],
    costs: Sequence[float],
    distance_of: Callable[[int, int], float],
    budget: float,
) -> TAPSolution:
    """Matrix-free top-k baseline (the last rung of the TAP degradation ladder).

    Same selection rule as :func:`solve_baseline`, but distances are only
    evaluated along the emitted sequence — O(ε_t) distance calls, nothing
    quadratic — so it stays viable however large Q grows and however little
    time is left.  Always returns a valid (possibly empty) solution.
    """
    if budget <= 0:
        raise TAPError("budget must be positive")
    interests = np.asarray(interests, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if interests.shape != costs.shape:
        raise TAPError("interests and costs must align")
    if np.any(costs <= 0):
        raise TAPError("costs must be positive")
    with obs.span("tap.baseline", n=int(interests.size)) as sp:
        ranked = np.argsort(-interests, kind="stable")
        order: list[int] = []
        cost_used = 0.0
        for raw in ranked:
            q = int(raw)
            if cost_used + float(costs[q]) > budget + _EPS:
                continue
            order.append(q)
            cost_used += float(costs[q])
        distance = float(
            sum(distance_of(order[i], order[i + 1]) for i in range(len(order) - 1))
        )
        interest = float(interests[order].sum()) if order else 0.0
        sp.set(selected=len(order))
    logger.debug("lazy top-k baseline selected %d of %d queries",
                 len(order), interests.size)
    return TAPSolution(tuple(order), interest, cost_used, distance, optimal=False)
