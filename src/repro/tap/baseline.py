"""The top-k baseline of Section 6.4.

"A baseline consisting of picking the top ε_t queries in terms of
interestingness" — no distance awareness at all.  Used as the comparison
arm of the recall experiment (Table 6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TAPError
from repro.tap.instance import TAPInstance, TAPSolution, make_solution

_EPS = 1e-9


def solve_baseline(instance: TAPInstance, budget: float) -> TAPSolution:
    """Greedily take the most interesting queries until the budget is spent.

    The sequence is emitted in decreasing-interest order (the baseline has
    no notion of browsing distance), so its total distance is whatever it
    happens to be.
    """
    if budget <= 0:
        raise TAPError("budget must be positive")
    ranked = np.argsort(-instance.interests, kind="stable")
    order: list[int] = []
    cost_used = 0.0
    for raw in ranked:
        q = int(raw)
        if cost_used + float(instance.costs[q]) > budget + _EPS:
            continue
        order.append(q)
        cost_used += float(instance.costs[q])
    return make_solution(instance, order, optimal=False)
