"""The Traveling Analyst Problem instance and solution model (Definition 4.1).

A TAP instance is a set of N queries with positive interest and cost, and a
metric pairwise distance.  A solution is an ordered sequence of distinct
queries; its quality ``z`` is the summed interest, subject to the cost
budget ε_t and (in the ε-constraint formulation of Section 5.3) a bound
ε_d on the summed consecutive distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

import numpy as np

from repro.errors import TAPError

T = TypeVar("T")


class TAPInstance(Generic[T]):
    """N items with interests, costs, and a metric distance matrix.

    ``items`` carries the domain objects (e.g. :class:`ComparisonQuery`);
    solvers work on indices.  The distance matrix is materialized once —
    instances used with the exact solver are small by nature (Table 4), and
    the heuristic only reads one row at a time.
    """

    __slots__ = ("items", "interests", "costs", "distances")

    def __init__(
        self,
        items: Sequence[T],
        interests: Sequence[float],
        costs: Sequence[float],
        distances: np.ndarray,
    ):
        n = len(items)
        interests = np.asarray(interests, dtype=np.float64)
        costs = np.asarray(costs, dtype=np.float64)
        distances = np.asarray(distances, dtype=np.float64)
        if interests.shape != (n,) or costs.shape != (n,):
            raise TAPError("interests and costs must have one entry per item")
        if distances.shape != (n, n):
            raise TAPError(f"distance matrix must be {n}x{n}, got {distances.shape}")
        if np.any(interests < 0):
            raise TAPError("interests must be non-negative")
        if np.any(costs <= 0):
            raise TAPError("costs must be positive")
        if not np.allclose(distances, distances.T, atol=1e-9):
            raise TAPError("distance matrix must be symmetric")
        if np.any(np.diag(distances) != 0):
            raise TAPError("distance matrix must have a zero diagonal")
        self.items = list(items)
        self.interests = interests
        self.costs = costs
        self.distances = distances

    @property
    def n(self) -> int:
        return len(self.items)

    @classmethod
    def build(
        cls,
        items: Sequence[T],
        interest_of: Callable[[T], float],
        cost_of: Callable[[T], float],
        distance_of: Callable[[T, T], float],
    ) -> "TAPInstance[T]":
        """Materialize an instance from scoring callables."""
        n = len(items)
        interests = [interest_of(item) for item in items]
        costs = [cost_of(item) for item in items]
        distances = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = distance_of(items[i], items[j])
                distances[i, j] = d
                distances[j, i] = d
        return cls(items, interests, costs, distances)

    def sequence_distance(self, indices: Sequence[int]) -> float:
        """Σ consecutive distance along ``indices``."""
        return float(
            sum(self.distances[indices[i], indices[i + 1]] for i in range(len(indices) - 1))
        )

    def sequence_interest(self, indices: Sequence[int]) -> float:
        return float(self.interests[list(indices)].sum()) if indices else 0.0

    def sequence_cost(self, indices: Sequence[int]) -> float:
        return float(self.costs[list(indices)].sum()) if indices else 0.0


@dataclass(frozen=True, slots=True)
class TAPSolution:
    """An ordered solution with its scores.

    ``optimal`` is True only when produced by the exact solver *and* the
    solver proved optimality (no timeout).
    """

    indices: tuple[int, ...]
    interest: float
    cost: float
    distance: float
    optimal: bool = False
    solve_seconds: float = 0.0
    nodes_explored: int = 0

    @property
    def size(self) -> int:
        return len(self.indices)

    def items(self, instance: TAPInstance[T]) -> list[T]:
        return [instance.items[i] for i in self.indices]


def make_solution(
    instance: TAPInstance,
    indices: Sequence[int],
    optimal: bool = False,
    solve_seconds: float = 0.0,
    nodes_explored: int = 0,
) -> TAPSolution:
    """Score ``indices`` against ``instance`` and wrap as a solution."""
    seq = tuple(int(i) for i in indices)
    if len(set(seq)) != len(seq):
        raise TAPError("a TAP solution must not repeat queries")
    if seq and (min(seq) < 0 or max(seq) >= instance.n):
        raise TAPError("solution indices out of range")
    return TAPSolution(
        seq,
        instance.sequence_interest(seq),
        instance.sequence_cost(seq),
        instance.sequence_distance(seq),
        optimal=optimal,
        solve_seconds=solve_seconds,
        nodes_explored=nodes_explored,
    )


def validate_solution(
    instance: TAPInstance,
    solution: TAPSolution,
    budget: float,
    epsilon_distance: float,
) -> None:
    """Raise :class:`TAPError` unless the solution satisfies both bounds."""
    if solution.cost > budget + 1e-9:
        raise TAPError(f"solution cost {solution.cost} exceeds budget {budget}")
    if solution.distance > epsilon_distance + 1e-9:
        raise TAPError(
            f"solution distance {solution.distance} exceeds epsilon_d {epsilon_distance}"
        )
