"""Minimum Hamiltonian-path machinery for the TAP solvers.

The TAP's distance objective is the length of the visiting order (an open
path, no fixed endpoints — "differently from the classical orienteering
problem, starting and ending points are not specified").  The exact solver
needs the true minimum path length of a candidate subset; this module
provides:

* :func:`held_karp_path` — exact min Hamiltonian path, O(2^k · k²) dynamic
  program, practical to k ≈ 16;
* :func:`mst_lower_bound` — a cheap lower bound (a Hamiltonian path is a
  spanning tree, so MST weight ≤ min path), used to prune before paying
  for the DP;
* :func:`best_insertion_order` — the greedy ordering primitive of
  Algorithm 3 (insert each new element at the position minimizing the
  total distance).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TAPError

#: Above this subset size the Held-Karp DP is refused (memory/time guard).
MAX_EXACT_PATH = 18


def held_karp_path(distances: np.ndarray, subset: Sequence[int]) -> tuple[float, list[int]]:
    """Exact minimum open Hamiltonian path over ``subset``.

    Returns ``(length, order)``.  The DP state is (visited-mask, last
    vertex); both endpoints are free.
    """
    k = len(subset)
    if k > MAX_EXACT_PATH:
        raise TAPError(f"exact path limited to {MAX_EXACT_PATH} vertices, got {k}")
    if k == 0:
        return 0.0, []
    if k == 1:
        return 0.0, [int(subset[0])]
    local = np.asarray(
        [[distances[a, b] for b in subset] for a in subset], dtype=np.float64
    )
    full = 1 << k
    INF = np.inf
    dp = np.full((full, k), INF)
    parent = np.full((full, k), -1, dtype=np.int64)
    for v in range(k):
        dp[1 << v, v] = 0.0
    for mask in range(full):
        row = dp[mask]
        active = np.flatnonzero(np.isfinite(row))
        if active.size == 0:
            continue
        for last in active:
            base = row[last]
            for nxt in range(k):
                bit = 1 << nxt
                if mask & bit:
                    continue
                new_mask = mask | bit
                candidate = base + local[last, nxt]
                if candidate < dp[new_mask, nxt]:
                    dp[new_mask, nxt] = candidate
                    parent[new_mask, nxt] = last
    final_mask = full - 1
    end = int(np.argmin(dp[final_mask]))
    length = float(dp[final_mask, end])
    order_local = []
    mask, last = final_mask, end
    while last >= 0:
        order_local.append(last)
        prev = int(parent[mask, last])
        mask ^= 1 << last
        last = prev
    order_local.reverse()
    return length, [int(subset[i]) for i in order_local]


def mst_lower_bound(distances: np.ndarray, subset: Sequence[int]) -> float:
    """MST weight of the subset — a lower bound on the min Hamiltonian path.

    Prim's algorithm on the induced sub-matrix, O(k²).
    """
    k = len(subset)
    if k <= 1:
        return 0.0
    idx = np.asarray(subset, dtype=np.int64)
    sub = distances[np.ix_(idx, idx)]
    in_tree = np.zeros(k, dtype=bool)
    best = np.full(k, np.inf)
    in_tree[0] = True
    best = sub[0].copy()
    best[0] = np.inf
    total = 0.0
    for _ in range(k - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, best)))
        total += float(best[nxt])
        in_tree[nxt] = True
        best = np.minimum(best, sub[nxt])
    return total


def min_path_length(
    distances: np.ndarray, subset: Sequence[int], exact_limit: int = MAX_EXACT_PATH
) -> float:
    """Min Hamiltonian path length; exact up to ``exact_limit``, else greedy.

    Beyond the exact limit the best-insertion length is returned, which is
    an *upper* bound — callers that rely on a lower bound must combine with
    :func:`mst_lower_bound`.
    """
    if len(subset) <= exact_limit:
        length, _ = held_karp_path(distances, subset)
        return length
    order = best_insertion_order(distances, subset)
    return float(
        sum(distances[order[i], order[i + 1]] for i in range(len(order) - 1))
    )


def best_insertion_position(distances: np.ndarray, order: list[int], new: int) -> tuple[int, float]:
    """Cheapest position to insert ``new`` into ``order``.

    Returns ``(position, resulting_total_delta)`` where position ``p``
    means "insert before index p" (p = len(order) appends).
    """
    if not order:
        return 0, 0.0
    best_pos = 0
    best_delta = float(distances[new, order[0]])  # prepend
    tail_delta = float(distances[order[-1], new])  # append
    if tail_delta < best_delta:
        best_pos, best_delta = len(order), tail_delta
    for p in range(1, len(order)):
        a, b = order[p - 1], order[p]
        delta = float(distances[a, new] + distances[new, b] - distances[a, b])
        if delta < best_delta:
            best_pos, best_delta = p, delta
    return best_pos, best_delta


def best_insertion_order(distances: np.ndarray, subset: Sequence[int]) -> list[int]:
    """Greedy ordering: insert each element at its cheapest position."""
    order: list[int] = []
    for v in subset:
        pos, _ = best_insertion_position(distances, order, int(v))
        order.insert(pos, int(v))
    return order
