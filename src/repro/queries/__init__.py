"""Comparison queries: model, SQL generation, evaluation, scoring."""

from repro.queries.comparison import ComparisonQuery
from repro.queries.cost import CostModel, MeasuredCost, UniformCost
from repro.queries.distance import (
    DEFAULT_WEIGHTS,
    DistanceWeights,
    query_distance,
    sequence_distance,
)
from repro.queries.explain import GroupContribution, explain_comparison, explanation_sentence
from repro.queries.evaluate import (
    ComparisonResult,
    evaluate_comparison,
    evaluate_comparison_cached,
    evaluate_comparison_sql,
    supported_types,
)
from repro.queries.interestingness import (
    DEFAULT_ALPHA,
    DEFAULT_DELTA,
    DEFAULT_OMEGA,
    InterestingnessConfig,
    conciseness,
    insight_term,
    query_interest,
)
from repro.queries.sqlgen import (
    bind_table,
    comparison_aliases,
    comparison_sql,
    comparison_sql_pivot,
    hypothesis_sql,
    sql_identifier,
    sql_string,
    value_alias,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_DELTA",
    "DEFAULT_OMEGA",
    "DEFAULT_WEIGHTS",
    "ComparisonQuery",
    "ComparisonResult",
    "CostModel",
    "DistanceWeights",
    "GroupContribution",
    "InterestingnessConfig",
    "MeasuredCost",
    "UniformCost",
    "bind_table",
    "comparison_aliases",
    "comparison_sql",
    "comparison_sql_pivot",
    "conciseness",
    "evaluate_comparison",
    "evaluate_comparison_cached",
    "evaluate_comparison_sql",
    "explain_comparison",
    "explanation_sentence",
    "hypothesis_sql",
    "insight_term",
    "query_distance",
    "query_interest",
    "sequence_distance",
    "sql_identifier",
    "sql_string",
    "supported_types",
    "value_alias",
]
