"""Explanation of comparison results (the paper's future-work direction).

The conclusion of the paper plans to extend the approach "to other forms
of popular analytical queries (like, e.g., explain queries [1])", citing
DIFF-style relational explanation.  This module implements the natural
first step for comparison queries: given a comparison result, rank the
groups by how much they *drive* the aggregate difference between the two
selections, so the notebook can say not only "May dominates April" but
also "mostly because of America and Asia".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.queries.evaluate import ComparisonResult


@dataclass(frozen=True, slots=True)
class GroupContribution:
    """One group's contribution to the comparison's overall gap.

    ``delta`` is ``x - y`` for the group; ``share`` is the group's fraction
    of the total absolute gap (so shares sum to 1 over all groups with a
    non-zero delta); ``direction`` is +1 when the group moves with the
    overall gap, -1 when it moves against it.
    """

    group: str
    x: float
    y: float
    delta: float
    share: float
    direction: int


def explain_comparison(result: ComparisonResult, top_k: int | None = None) -> list[GroupContribution]:
    """Rank groups by |contribution| to the comparison's difference.

    Works on any aggregate: the "gap" explained is the per-group difference
    of the aggregated series (the quantity the chart visually shows).
    NaN group values contribute nothing.  Returns the top ``top_k``
    contributions (all when None), most influential first.
    """
    if result.n_groups == 0:
        raise QueryError("cannot explain an empty comparison result")
    deltas = np.asarray(result.x, dtype=np.float64) - np.asarray(result.y, dtype=np.float64)
    deltas = np.where(np.isnan(deltas), 0.0, deltas)
    total = float(deltas.sum())
    overall_sign = 1 if total >= 0 else -1
    absolute = np.abs(deltas)
    denominator = float(absolute.sum())
    contributions = []
    for group, x, y, delta in zip(result.groups, result.x, result.y, deltas):
        share = float(abs(delta) / denominator) if denominator > 0 else 0.0
        direction = 1 if delta * overall_sign >= 0 else -1
        contributions.append(
            GroupContribution(group, float(x), float(y), float(delta), share, direction)
        )
    contributions.sort(key=lambda c: -abs(c.delta))
    if top_k is not None:
        contributions = contributions[:top_k]
    return contributions


def explanation_sentence(result: ComparisonResult, top_k: int = 3) -> str:
    """A one-line narrative: the groups driving the comparison.

    Example: "driven mostly by America (54% of the gap) and Asia (21%);
    Europe moves against the trend".
    """
    ranked = explain_comparison(result, top_k=None)
    drivers = [c for c in ranked if c.direction > 0 and c.share > 0][:top_k]
    against = [c for c in ranked if c.direction < 0 and c.share >= 0.1]
    if not drivers:
        return "no single group drives the difference"
    parts = ", ".join(f"{c.group} ({c.share:.0%} of the gap)" for c in drivers)
    sentence = f"driven mostly by {parts}"
    if against:
        names = ", ".join(c.group for c in against[:top_k])
        sentence += f"; {names} move{'s' if len(against) == 1 else ''} against the trend"
    return sentence
