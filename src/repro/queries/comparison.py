"""Comparison queries (Definition 3.1) as first-class values.

A comparison query is the 6-tuple ``(A, B, val, val', M, agg)``: group by
``A``, compare the aggregate ``agg(M)`` between the selections ``B = val``
and ``B = val'``, presented as a join on ``A`` (one output row per common
group, two measure columns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.relational.aggregates import is_aggregate
from repro.relational.table import Table


@dataclass(frozen=True, slots=True)
class ComparisonQuery:
    """The paper's 6-tuple ``(A, B, val, val', M, agg)``.

    Attributes
    ----------
    group_by:
        ``A`` — the grouping (presentation) attribute.
    selection_attribute:
        ``B`` — the compared attribute.
    val, val_other:
        The two compared members of ``dom(B)``.
    measure:
        ``M`` — the aggregated measure.
    agg:
        The aggregate function name (lower-case).
    """

    group_by: str
    selection_attribute: str
    val: str
    val_other: str
    measure: str
    agg: str

    def __post_init__(self) -> None:
        if self.group_by == self.selection_attribute:
            raise QueryError("grouping and selection attributes must differ")
        if self.val == self.val_other:
            raise QueryError("a comparison needs two distinct selection values")
        if not is_aggregate(self.agg):
            raise QueryError(f"unknown aggregate {self.agg!r}")

    @property
    def key(self) -> tuple[str, str, str, str, str, str]:
        return (
            self.group_by,
            self.selection_attribute,
            self.val,
            self.val_other,
            self.measure,
            self.agg,
        )

    @property
    def evidence_key(self) -> tuple[str, str, str, str]:
        """Identity of the *insight set* a query evidences.

        Per Section 3.2, comparison queries differing only in the grouping
        attribute ``A`` evidence the same insights; the generator keeps only
        the most interesting query per evidence key.  The key is
        ``(B, {val, val'}, M)`` with the pair canonicalized by sorting.
        """
        lo, hi = sorted((self.val, self.val_other))
        return (self.selection_attribute, lo, hi, self.measure)

    @property
    def dedup_key(self) -> tuple[str, str, str, str, str]:
        """Grouping key of Algorithm 1's lines 15-16.

        Queries sharing ``(B, {val, val'}, M, agg)`` and differing only in
        the grouping attribute ``A`` evidence the same insights; only the
        most interesting of each group is kept.
        """
        lo, hi = sorted((self.val, self.val_other))
        return (self.selection_attribute, lo, hi, self.measure, self.agg)

    @property
    def parts(self) -> dict[str, object]:
        """Named query parts for the weighted Hamming distance."""
        return {
            "group_by": self.group_by,
            "selection_attribute": self.selection_attribute,
            "selection_values": frozenset((self.val, self.val_other)),
            "measure": self.measure,
            "agg": self.agg,
        }

    def validate_against(self, table: Table) -> None:
        """Raise :class:`QueryError` unless the query fits the schema."""
        schema = table.schema
        try:
            schema.require_categorical(self.group_by)
            schema.require_categorical(self.selection_attribute)
            schema.require_measure(self.measure)
        except Exception as exc:  # SchemaError -> QueryError with context
            raise QueryError(f"comparison query {self.key} does not fit the schema: {exc}") from exc

    def describe(self) -> str:
        """Compact human-readable rendering."""
        return (
            f"{self.agg}({self.measure}) by {self.group_by}: "
            f"{self.selection_attribute}={self.val} vs {self.selection_attribute}={self.val_other}"
        )
