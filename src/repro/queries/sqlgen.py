"""SQL text generation for comparison and hypothesis queries.

Two forms of the comparison query are supported, mirroring Section 3.1:

* the **join form** of Definition 3.1 / Figure 2 — two aggregating
  subqueries joined on the grouping attribute, tabular presentation;
* the **pivot form** — a single group-by over both attributes with a
  disjunctive selection, which "would require a pivot operation" for
  tabular presentation but is useful for cost comparisons.

Hypothesis queries (Definition 3.7 / Figure 3) wrap the comparison in a CTE
and test the insight predicate in a ``HAVING`` over the whole result.
All emitted SQL parses and runs on :mod:`repro.sqlengine`.
"""

from __future__ import annotations

import re

from repro.insights.types import InsightType
from repro.queries.comparison import ComparisonQuery

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

# Keep in sync with repro.sqlengine.lexer.KEYWORDS; quoting a keyword-like
# identifier keeps the emitted SQL parseable.
_RESERVED = frozenset(
    """
    select from where group by having order asc desc limit as and or not
    in is null join inner on with distinct union all between like
    """.split()
)


def sql_identifier(name: str) -> str:
    """Quote ``name`` if it is not a plain SQL identifier."""
    if _IDENTIFIER.match(name) and name.lower() not in _RESERVED:
        return name
    escaped = name.replace('"', "")
    return f'"{escaped}"'


def sql_string(value: str) -> str:
    """A single-quoted SQL string literal."""
    return "'" + str(value).replace("'", "''") + "'"


def value_alias(label: str, taken: set[str] | None = None) -> str:
    """A readable column alias derived from a selection value.

    ``May`` stays ``May``; ``4`` becomes ``val_4``; anything non-identifier
    is sanitized.  ``taken`` avoids collisions between the two sides.
    """
    candidate = str(label)
    if not _IDENTIFIER.match(candidate) or candidate.lower() in _RESERVED:
        sanitized = re.sub(r"[^A-Za-z0-9_]", "_", candidate)
        candidate = f"val_{sanitized}" if sanitized else "val"
    if taken is not None:
        base = candidate
        suffix = 2
        while candidate in taken:
            candidate = f"{base}_{suffix}"
            suffix += 1
        taken.add(candidate)
    return candidate


def comparison_aliases(query: ComparisonQuery) -> tuple[str, str]:
    """The two measure-column aliases of a comparison result."""
    taken: set[str] = set()
    return value_alias(query.val, taken), value_alias(query.val_other, taken)


def comparison_sql(query: ComparisonQuery) -> str:
    """Join-form SQL of a comparison query (Figure 2 shape)."""
    a = sql_identifier(query.group_by)
    b = sql_identifier(query.selection_attribute)
    m = sql_identifier(query.measure)
    alias_x, alias_y = comparison_aliases(query)
    return (
        f"select t1.{a}, {alias_x}, {alias_y}\n"
        f"from\n"
        f"  (select {b}, {a}, {query.agg}({m}) as {alias_x}\n"
        f"   from {_TABLE_PLACEHOLDER}\n"
        f"   where {b} = {sql_string(query.val)}\n"
        f"   group by {b}, {a}) t1,\n"
        f"  (select {b}, {a}, {query.agg}({m}) as {alias_y}\n"
        f"   from {_TABLE_PLACEHOLDER}\n"
        f"   where {b} = {sql_string(query.val_other)}\n"
        f"   group by {b}, {a}) t2\n"
        f"where t1.{a} = t2.{a}\n"
        f"order by t1.{a}"
    )


def comparison_sql_pivot(query: ComparisonQuery) -> str:
    """Pivot-form SQL (single group-by with a disjunctive selection)."""
    a = sql_identifier(query.group_by)
    b = sql_identifier(query.selection_attribute)
    m = sql_identifier(query.measure)
    return (
        f"select {a}, {b}, {query.agg}({m})\n"
        f"from {_TABLE_PLACEHOLDER}\n"
        f"where {b} = {sql_string(query.val)} or {b} = {sql_string(query.val_other)}\n"
        f"group by {a}, {b}\n"
        f"order by {a}, {b}"
    )


def hypothesis_sql(query: ComparisonQuery, insight_type: InsightType) -> str:
    """Hypothesis-query SQL (Figure 3 shape): CTE + HAVING on the predicate."""
    alias_x, alias_y = comparison_aliases(query)
    predicate = insight_type.hypothesis_predicate_sql(alias_x, alias_y)
    comparison = _indent(comparison_sql(query), "  ")
    return (
        f"with comparison as (\n{comparison}\n)\n"
        f"select {sql_string(insight_type.label)} as hypothesis\n"
        f"from comparison\n"
        f"having {predicate}"
    )


_TABLE_PLACEHOLDER = "{table}"


def bind_table(sql: str, table_name: str) -> str:
    """Substitute the dataset's table name into generated SQL."""
    return sql.replace(_TABLE_PLACEHOLDER, sql_identifier(table_name))


def _indent(text: str, pad: str) -> str:
    return "\n".join(pad + line for line in text.splitlines())
