"""Comparison-query interestingness (Definition 4.3).

``interest(q) = conciseness(θ_q, γ_q) × Σ_{i ∈ I_q} ω · sig(i) · (1 - credibility(i)/|Qⁱ|)``

The three multiplicative ingredients mirror the paper's manifold notion of
interestingness: conciseness of the displayed result, significance of the
supported insights, and surprise (the probability the insight would have
been a type-II omission).  The user-study variants of Table 7 are obtained
by switching components off in :class:`InterestingnessConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import QueryError
from repro.insights.insight import InsightEvidence

#: Defaults tuned (as in the paper, "empirically") so that the conciseness
#: ridge rewards readable group counts: for θ = 2000 aggregated tuples the
#: ideal is ~40 groups, a 10-group result still scores ~0.99, and a
#: 1300-group result (grouping by a huge-domain attribute) scores ~0.
DEFAULT_ALPHA = 0.02
DEFAULT_DELTA = 1.5
DEFAULT_OMEGA = 1.0


def conciseness(
    tuples_aggregated: float,
    n_groups: float,
    alpha: float = DEFAULT_ALPHA,
    delta: float = DEFAULT_DELTA,
) -> float:
    """The non-monotonic conciseness function of Definition 4.3 / Figure 4.

    ``conciseness(θ, γ) = exp( -(γ - θ·α)² / θ^δ )``

    * α sets the growth rate of the ideal number of groups w.r.t. the
      number of aggregated tuples (the ridge's slope);
    * δ spreads the ridge (tolerance around the ideal ratio).

    The function is undefined (0 here) when γ > θ — more groups than
    tuples "does not make sense in our context".
    """
    if tuples_aggregated <= 0 or n_groups <= 0:
        return 0.0
    if n_groups > tuples_aggregated:
        return 0.0
    ideal = alpha * tuples_aggregated
    spread = tuples_aggregated**delta
    return math.exp(-((n_groups - ideal) ** 2) / spread)


@dataclass(frozen=True, slots=True)
class InterestingnessConfig:
    """Component switches and parameters of the interestingness measure.

    The Table 7 user-study variants map to:

    * full (default): all three components on;
    * ``sig. only``: ``use_conciseness=False, use_credibility=False``;
    * ``sig. and cred. only``: ``use_conciseness=False``.
    """

    alpha: float = DEFAULT_ALPHA
    delta: float = DEFAULT_DELTA
    omega: float = DEFAULT_OMEGA
    use_conciseness: bool = True
    use_significance: bool = True
    use_credibility: bool = True

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.delta <= 0 or self.omega <= 0:
            raise QueryError("interestingness parameters must be positive")

    def with_components(
        self, conciseness_on: bool, credibility_on: bool
    ) -> "InterestingnessConfig":
        """Variant with components toggled (used by the generator presets)."""
        return InterestingnessConfig(
            alpha=self.alpha,
            delta=self.delta,
            omega=self.omega,
            use_conciseness=conciseness_on,
            use_significance=self.use_significance,
            use_credibility=credibility_on,
        )


def insight_term(evidence: InsightEvidence, config: InterestingnessConfig) -> float:
    """One summand of Definition 4.3: ``ω · sig(i) · (1 - cred(i)/|Qⁱ|)``."""
    term = config.omega
    if config.use_significance:
        term *= evidence.insight.significance
    if config.use_credibility:
        term *= evidence.type_two_error_probability
    return term


def query_interest(
    tuples_aggregated: float,
    n_groups: float,
    supported: Iterable[InsightEvidence],
    config: InterestingnessConfig | None = None,
) -> float:
    """Definition 4.3 in full, over the insights a query supports."""
    config = config or InterestingnessConfig()
    total = sum(insight_term(e, config) for e in supported)
    if config.use_conciseness:
        total *= conciseness(tuples_aggregated, n_groups, config.alpha, config.delta)
    return total
