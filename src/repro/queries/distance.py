"""Weighted Hamming distance between comparison queries (Section 4.2).

The TAP needs a *metric* — the paper insists on the triangle inequality so
the solver never trades interestingness for distance through shortcut
queries.  The distance is a weighted sum over the query parts, each part
contributing a per-part metric:

* selection values ``{val, val'}`` — highest weight; compared as sets via
  the (normalized) symmetric difference, itself a metric;
* selection attribute ``B`` — next;
* grouping attribute ``A`` — next;
* measure ``M`` and aggregate ``agg`` — lowest.

A weighted sum of metrics is a metric, so the triangle inequality holds by
construction (property-tested in the suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.queries.comparison import ComparisonQuery


@dataclass(frozen=True, slots=True)
class DistanceWeights:
    """Per-part weights, defaulting to the paper's impact ordering
    (val/val' > B > A > M = agg)."""

    selection_values: float = 4.0
    selection_attribute: float = 3.0
    group_by: float = 2.0
    measure: float = 1.0
    agg: float = 1.0

    def __post_init__(self) -> None:
        values = (
            self.selection_values,
            self.selection_attribute,
            self.group_by,
            self.measure,
            self.agg,
        )
        if any(w < 0 for w in values):
            raise QueryError("distance weights must be non-negative")

    @property
    def maximum(self) -> float:
        """Largest possible distance (all parts differ)."""
        return (
            self.selection_values
            + self.selection_attribute
            + self.group_by
            + self.measure
            + self.agg
        )


DEFAULT_WEIGHTS = DistanceWeights()


def query_distance(
    first: ComparisonQuery, second: ComparisonQuery, weights: DistanceWeights = DEFAULT_WEIGHTS
) -> float:
    """Weighted Hamming distance between two comparison queries.

    Selection-value sets use ``|X Δ Y| / 4`` (0 when equal, ½ when one
    value is shared, 1 when disjoint); the remaining parts use the discrete
    0/1 metric.
    """
    total = 0.0
    set_first = frozenset((first.val, first.val_other))
    set_second = frozenset((second.val, second.val_other))
    total += weights.selection_values * len(set_first ^ set_second) / 4.0
    if first.selection_attribute != second.selection_attribute:
        total += weights.selection_attribute
    if first.group_by != second.group_by:
        total += weights.group_by
    if first.measure != second.measure:
        total += weights.measure
    if first.agg != second.agg:
        total += weights.agg
    return total


def sequence_distance(
    queries: list[ComparisonQuery], weights: DistanceWeights = DEFAULT_WEIGHTS
) -> float:
    """Total distance of a notebook: Σ dist(q_i, q_{i+1})."""
    return sum(
        query_distance(queries[i], queries[i + 1], weights) for i in range(len(queries) - 1)
    )
