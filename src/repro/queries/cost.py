"""Comparison-query cost models (Section 4.2, "Cost").

The paper observes (Figure 5) that without physical optimizations every
comparison query costs roughly the same, so the TAP can use a *uniform*
cost of 1 per query, turning the time budget ε_t into a bound on the
notebook length.  :class:`UniformCost` encodes that; :class:`MeasuredCost`
times the SQL execution (used by the Figure 5 benchmark to validate the
uniformity claim on our engine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import evaluate_comparison_sql
from repro.relational.table import Table


class CostModel(Protocol):
    """Anything that prices a comparison query."""

    def cost(self, query: ComparisonQuery) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True, slots=True)
class UniformCost:
    """Every query costs ``unit`` (paper default: 1.0)."""

    unit: float = 1.0

    def cost(self, query: ComparisonQuery) -> float:
        return self.unit


@dataclass(slots=True)
class MeasuredCost:
    """Wall-clock cost of running the query's SQL on the engine.

    Results are memoized per query key; use :meth:`timings` to retrieve
    the raw measurements for the Figure 5 distribution.
    """

    table: Table
    table_name: str = "dataset"
    _cache: dict[tuple, float] = field(default_factory=dict, repr=False)

    def cost(self, query: ComparisonQuery) -> float:
        cached = self._cache.get(query.key)
        if cached is not None:
            return cached
        start = time.perf_counter()
        evaluate_comparison_sql(self.table, self.table_name, query)
        elapsed = time.perf_counter() - start
        self._cache[query.key] = elapsed
        return elapsed

    def timings(self) -> dict[tuple, float]:
        return dict(self._cache)
