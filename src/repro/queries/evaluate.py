"""Evaluation of comparison queries: direct, cached, and via SQL.

Three evaluation paths, used by different parts of the reproduction:

* :func:`evaluate_comparison` — direct vectorized group-by on the base
  table (what Algorithm 1 does per hypothesis query);
* :func:`evaluate_comparison_cached` — from Algorithm 2's in-memory
  partial aggregates, "for free" once the covering group-by is loaded;
* :func:`evaluate_comparison_sql` — parse + execute the generated SQL on
  the SQL engine (used to cross-validate the fast paths and to time the
  Figure 5 run-time distribution).

All three return the same :class:`ComparisonResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.insights.types import InsightType
from repro.queries.comparison import ComparisonQuery
from repro.queries.sqlgen import bind_table, comparison_aliases, comparison_sql
from repro.relational.cube import MaterializedAggregate, PairAggregate, PartialAggregateCache
from repro.relational.table import Table
from repro.sqlengine.executor import Catalog, execute_sql


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """Aligned result of a comparison query (Definition 3.1's join).

    Attributes
    ----------
    groups:
        Values of the grouping attribute present under *both* selections,
        sorted (the τ operator).
    x, y:
        Aggregate series for ``B = val`` and ``B = val'``, aligned with
        ``groups``.
    tuples_aggregated:
        θ_q of the conciseness measure: base tuples matching either
        selection.
    """

    query: ComparisonQuery
    groups: tuple[str, ...]
    x: np.ndarray
    y: np.ndarray
    tuples_aggregated: int

    @property
    def n_groups(self) -> int:
        """γ_q of the conciseness measure: output rows of the query."""
        return len(self.groups)

    def supports(self, insight_type: InsightType) -> bool:
        """Definition 3.8: does this result support the given insight type?

        The result must be non-empty — an empty comparison triggers nothing.
        """
        if self.n_groups == 0:
            return False
        return insight_type.supports(self.x, self.y)


def evaluate_comparison(table: Table, query: ComparisonQuery) -> ComparisonResult:
    """Direct evaluation against base data (one grouped pass per side).

    Routed through the table's cross-stage aggregate cache under the
    in-process ("columnar") key: notebook rendering re-evaluates the very
    pairs hypothesis evaluation already materialized, and two aggs over the
    same (pair, measure) share one group-by pass.
    """
    query.validate_against(table)
    pair = (query.group_by, query.selection_attribute)
    aggregate = table.aggregate_cache().get_or_build(
        "columnar",
        pair,
        [query.measure],
        lambda: MaterializedAggregate.build(table, pair, [query.measure]),
    )
    return comparison_from_aggregate(aggregate, query)


def comparison_from_aggregate(
    aggregate: MaterializedAggregate, query: ComparisonQuery
) -> ComparisonResult:
    """Evaluation from a pre-built pair aggregate over (A, B).

    The aggregate must cover exactly the query's grouping and selection
    attributes with its measure materialized; any engine that can produce
    the additive per-group summaries (see :mod:`repro.backend`) funnels
    through here, so alignment and θ/γ accounting are engine-independent.
    """
    pair = aggregate.pair_view(query.group_by, query.selection_attribute)
    return _from_pair(pair, query)


def evaluate_comparison_cached(
    cache: PartialAggregateCache, query: ComparisonQuery
) -> ComparisonResult:
    """Evaluation from Algorithm 2's partial-aggregate cache."""
    pair = cache.pair(query.group_by, query.selection_attribute)
    return _from_pair(pair, query)


def _from_pair(pair: PairAggregate, query: ComparisonQuery) -> ComparisonResult:
    groups, x, y = pair.aligned_series(
        query.group_by,
        query.selection_attribute,
        query.val,
        query.val_other,
        query.measure,
        query.agg,
    )
    theta = _selection_tuples(pair, query)
    return ComparisonResult(query, tuple(groups), x, y, theta)


def _selection_tuples(pair: PairAggregate, query: ComparisonQuery) -> int:
    """Tuples matching ``B = val or B = val'`` from the count summaries."""
    total = 0
    for label in (query.val, query.val_other):
        counts = pair.series(
            query.group_by, query.selection_attribute, label, query.measure, "count"
        )
        total += int(sum(counts.values()))
    return total


def evaluate_comparison_sql(table: Table, table_name: str, query: ComparisonQuery) -> ComparisonResult:
    """Evaluation through SQL text + the SQL engine (slow, for validation)."""
    catalog = Catalog({table_name: table})
    sql = bind_table(comparison_sql(query), table_name)
    result = execute_sql(sql, catalog)
    alias_x, alias_y = comparison_aliases(query)
    groups = tuple(str(v) for v in result.column(result.schema.names[0]).values())
    x = np.asarray(result.measure_values(alias_x), dtype=np.float64)
    y = np.asarray(result.measure_values(alias_y), dtype=np.float64)
    selection = table.categorical_column(query.selection_attribute)
    theta = int(
        selection.equals_mask(query.val).sum() + selection.equals_mask(query.val_other).sum()
    )
    return ComparisonResult(query, groups, x, y, theta)


def supported_types(
    result: ComparisonResult, insight_types: Sequence[InsightType]
) -> list[InsightType]:
    """The insight types this comparison result supports."""
    return [t for t in insight_types if result.supports(t)]
