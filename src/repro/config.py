"""Top-level configuration: one object for the whole pipeline.

:class:`ReproConfig` unifies every knob surface that previously had to be
threaded separately — :class:`~repro.generation.config.GenerationConfig`
(with its nested :class:`~repro.insights.significance.SignificanceConfig`
and :class:`~repro.parallel.config.ParallelConfig`) plus the TAP-side
settings (notebook budget ``eps_t``, distance bound ``eps_d``, solver
choice, deadline).  It is what the :mod:`repro.api` facade and the CLI
consume, and it round-trips through JSON-friendly dicts
(:meth:`to_dict` / :meth:`from_dict`) and the ``REPRO_*`` environment
(:meth:`from_env`).

The legacy entry points (:class:`~repro.generation.pipeline.NotebookGenerator`
and the per-stage config constructors) keep working but are deprecation
shims over this object.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ReproError
from repro.generation.config import GenerationConfig, SamplingSpec
from repro.insights.significance import SignificanceConfig
from repro.parallel.config import ParallelConfig
from repro.queries.distance import DistanceWeights
from repro.queries.interestingness import InterestingnessConfig

__all__ = ["ReproConfig"]

#: TAP solver names accepted by ``ReproConfig.solver``.
SOLVER_NAMES: tuple[str, ...] = ("heuristic", "exact")


def _plain(obj) -> dict:
    """A flat dataclass as a JSON-friendly dict (tuples become lists)."""
    out = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def _build(cls, payload: Mapping, label: str):
    """Construct a flat dataclass from a mapping, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ReproError(
            f"unknown {label} keys {sorted(unknown)}; known: {sorted(known)}"
        )
    return cls(**payload)


@dataclass(frozen=True, slots=True)
class ReproConfig:
    """Everything one end-to-end run needs, in one immutable object.

    Attributes
    ----------
    generation:
        Query-generation settings (aggregates, insight types, statistical
        tests, evaluator, execution backend, parallel layer).
    budget:
        Notebook length ``eps_t`` — the TAP time budget.
    epsilon_distance:
        TAP distance bound ``eps_d``; ``None`` derives the default
        (4 per transition, as the pipeline has always done).
    solver:
        ``"heuristic"`` (Algorithm 3) or ``"exact"`` (branch-and-bound).
    exact_timeout:
        Wall-clock limit for the exact solver, seconds (None = unbounded).
    max_exact_queries:
        Instance-size guard for the exact solver's distance matrix.
    deadline_seconds:
        Wall-clock budget for the whole run; stages degrade through the
        runtime ladder instead of overrunning (None = no deadline).
    """

    generation: GenerationConfig = field(default_factory=GenerationConfig)
    budget: float = 10.0
    epsilon_distance: float | None = None
    solver: str = "heuristic"
    exact_timeout: float | None = 60.0
    max_exact_queries: int = 2000
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.solver not in SOLVER_NAMES:
            raise ReproError(f"unknown solver {self.solver!r}; known: {SOLVER_NAMES}")
        if self.budget <= 0:
            raise ReproError(f"budget must be positive, got {self.budget}")
        if self.epsilon_distance is not None and self.epsilon_distance < 0:
            raise ReproError("epsilon_distance cannot be negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ReproError("deadline_seconds must be positive when set")
        if self.max_exact_queries < 1:
            raise ReproError("max_exact_queries must be at least 1")

    # -- convenience views ---------------------------------------------------

    @property
    def significance(self) -> SignificanceConfig:
        return self.generation.significance

    @property
    def parallel(self) -> ParallelConfig:
        """The parallel layer actually in force (legacy knobs resolved)."""
        return self.generation.effective_parallel()

    @property
    def backend(self) -> str:
        return self.generation.backend

    # -- functional updates --------------------------------------------------

    def replace(self, **changes) -> "ReproConfig":
        """A copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_generation(self, **changes) -> "ReproConfig":
        """A copy with fields of ``generation`` replaced."""
        return self.replace(
            generation=dataclasses.replace(self.generation, **changes)
        )

    def with_significance(self, **changes) -> "ReproConfig":
        """A copy with fields of ``generation.significance`` replaced."""
        return self.with_generation(
            significance=dataclasses.replace(self.generation.significance, **changes)
        )

    def with_parallel(self, **changes) -> "ReproConfig":
        """A copy with fields of the effective parallel config replaced."""
        return self.with_generation(
            parallel=dataclasses.replace(self.parallel, **changes)
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-friendly dict that :meth:`from_dict` round-trips.

        The legacy ``n_threads`` / ``parallel_backend`` knobs are *not*
        serialized — the effective parallel settings already capture them.
        """
        gen = self.generation
        return {
            "generation": {
                "aggregates": list(gen.aggregates),
                "insight_types": list(gen.insight_types),
                "significance": _plain(gen.significance),
                "interestingness": _plain(gen.interestingness),
                "distance_weights": _plain(gen.distance_weights),
                "sampling": _plain(gen.sampling) if gen.sampling else None,
                "exclude_functional_dependencies": gen.exclude_functional_dependencies,
                "prune_transitive": gen.prune_transitive,
                "evaluator": gen.evaluator,
                "backend": gen.backend,
                "mqo": gen.mqo,
                "memory_budget_bytes": gen.memory_budget_bytes,
                "parallel": gen.effective_parallel().as_dict(),
                "max_pairs_per_attribute": gen.max_pairs_per_attribute,
            },
            "budget": self.budget,
            "epsilon_distance": self.epsilon_distance,
            "solver": self.solver,
            "exact_timeout": self.exact_timeout,
            "max_exact_queries": self.max_exact_queries,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReproConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`~repro.errors.ReproError` at every
        level — a typo'd setting must never be silently ignored.
        """
        top = dict(data)
        gen_data = dict(top.pop("generation", None) or {})
        top_known = {
            "budget", "epsilon_distance", "solver", "exact_timeout",
            "max_exact_queries", "deadline_seconds",
        }
        unknown = set(top) - top_known
        if unknown:
            raise ReproError(
                f"unknown ReproConfig keys {sorted(unknown)}; "
                f"known: {sorted(top_known | {'generation'})}"
            )

        gen_kwargs: dict = {}
        if "aggregates" in gen_data:
            gen_kwargs["aggregates"] = tuple(gen_data.pop("aggregates"))
        if "insight_types" in gen_data:
            gen_kwargs["insight_types"] = tuple(gen_data.pop("insight_types"))
        for key, sub in (
            ("significance", SignificanceConfig),
            ("interestingness", InterestingnessConfig),
            ("distance_weights", DistanceWeights),
        ):
            if key in gen_data:
                gen_kwargs[key] = _build(sub, gen_data.pop(key), key)
        if "sampling" in gen_data:
            payload = gen_data.pop("sampling")
            gen_kwargs["sampling"] = (
                _build(SamplingSpec, payload, "sampling") if payload else None
            )
        if "parallel" in gen_data:
            payload = gen_data.pop("parallel")
            gen_kwargs["parallel"] = (
                ParallelConfig.from_dict(payload) if payload else None
            )
        gen_known = {f.name for f in dataclasses.fields(GenerationConfig)}
        unknown = set(gen_data) - gen_known
        if unknown:
            raise ReproError(
                f"unknown generation keys {sorted(unknown)}; "
                f"known: {sorted(gen_known)}"
            )
        gen_kwargs.update(gen_data)
        return cls(generation=GenerationConfig(**gen_kwargs), **top)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "ReproConfig":
        """Defaults adjusted by the ``REPRO_*`` environment variables.

        Honours the per-subsystem hooks the CI matrix already uses —
        ``REPRO_BACKEND``, ``REPRO_STATS_KERNEL``, ``REPRO_WORKERS``,
        ``REPRO_SHM`` (column-store plane: ``0``/``1``/``auto``),
        ``REPRO_MQO`` (batched multi-aggregate compilation: ``0``/``1``)
        — plus the run-level ``REPRO_BUDGET``, ``REPRO_SOLVER``, and
        ``REPRO_DEADLINE``.  Pass ``environ`` to read from a mapping other
        than ``os.environ`` (tests).
        """
        env = os.environ if environ is None else environ

        def get(name: str) -> str | None:
            raw = env.get(name, "").strip()
            return raw or None

        def number(name: str, kind) -> float | int | None:
            raw = get(name)
            if raw is None:
                return None
            try:
                return kind(raw)
            except ValueError:
                raise ReproError(f"{name}={raw!r} is not a valid number") from None

        gen_kwargs: dict = {}
        backend = get("REPRO_BACKEND")
        if backend is not None:
            gen_kwargs["backend"] = backend
        mqo = get("REPRO_MQO")
        if mqo is not None:
            from repro.backend.base import parse_mqo_flag

            gen_kwargs["mqo"] = parse_mqo_flag(mqo)
        kernel = get("REPRO_STATS_KERNEL")
        if kernel is not None:
            gen_kwargs["significance"] = SignificanceConfig(kernel=kernel)
        workers = number("REPRO_WORKERS", int)
        shm = get("REPRO_SHM")
        if workers is not None or shm is not None:
            from repro.parallel.config import store_from_env_value

            parallel_kwargs: dict = {}
            if workers is not None:
                parallel_kwargs["workers"] = workers
            if shm is not None:
                parallel_kwargs["store"] = store_from_env_value(shm)
            gen_kwargs["parallel"] = ParallelConfig(**parallel_kwargs)

        top_kwargs: dict = {}
        budget = number("REPRO_BUDGET", float)
        if budget is not None:
            top_kwargs["budget"] = budget
        solver = get("REPRO_SOLVER")
        if solver is not None:
            top_kwargs["solver"] = solver
        deadline = number("REPRO_DEADLINE", float)
        if deadline is not None:
            top_kwargs["deadline_seconds"] = deadline
        return cls(generation=GenerationConfig(**gen_kwargs), **top_kwargs)
