"""End-to-end notebook generation: the implementations of Tables 3 and 7.

:class:`NotebookGenerator` chains query generation (Algorithm 1 /
Algorithm 2 variants) with TAP resolution (exact branch-and-bound or
Algorithm 3) and notebook rendering.  :func:`preset` returns the named
configurations the paper evaluates:

========================  ==========================  =================
name                      generation of Q             solving TAP
========================  ==========================  =================
``naive-exact``           Algo. 1 + bounding          exact B&B
``naive-approx``          Algo. 1 + bounding          Algo. 3
``wsc-approx``            Algo. 2                     Algo. 3
``wsc-unb-approx``        Algo. 2 + unbalanced smp.   Algo. 3
``wsc-rand-approx``       Algo. 2 + random smp.       Algo. 3
``wsc-approx-sig``        Algo. 2, sig-only interest  Algo. 3
``wsc-approx-sig-cred``   Algo. 2, sig+cred interest  Algo. 3
========================  ==========================  =================
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.backend import create_backend
from repro.errors import TAPError
from repro.generation.config import GenerationConfig, SamplingSpec
from repro.generation.generator import (
    GeneratedQuery,
    GenerationOutcome,
    generate_comparison_queries,
)
from repro.notebook.build import build_notebook
from repro.notebook.cells import Notebook
from repro.queries.distance import query_distance
from repro.relational.table import Table
from repro.runtime.report import RunReport
from repro.tap.exact import ExactConfig, solve_exact
from repro.tap.heuristic import HeuristicConfig, solve_heuristic_lazy
from repro.tap.instance import TAPInstance, TAPSolution

logger = logging.getLogger(__name__)

#: Default ε_d per notebook query: generous enough that Algorithm 3 keeps
#: the top queries, tight enough that close queries are preferred (the
#: paper tunes ε_d "to obtain TAP solutions where queries are very close
#: to each other").
DEFAULT_EPSILON_PER_QUERY = 4.0

_PRESET_NAMES = (
    "naive-exact",
    "naive-approx",
    "wsc-approx",
    "wsc-unb-approx",
    "wsc-rand-approx",
    "wsc-approx-sig",
    "wsc-approx-sig-cred",
)


@dataclass(slots=True)
class NotebookRun:
    """Result of one end-to-end generation run.

    ``report`` is attached when the run went through the resilient
    controller (:mod:`repro.runtime`): per-stage timings, degradations
    applied, warnings, and retry counts.
    """

    outcome: GenerationOutcome
    solution: TAPSolution
    selected: list[GeneratedQuery]
    budget: float
    epsilon_distance: float
    report: RunReport | None = None
    #: Raw per-family stats memo (:class:`repro.stats.delta.StatsMemo`)
    #: when the run was memoizable — the seed of the next incremental run.
    stats_memo: object | None = None

    @property
    def timings(self):
        return self.outcome.timings

    @property
    def degraded(self) -> bool:
        """True when the resilient controller applied any fallback."""
        return self.report is not None and self.report.degraded

    def to_notebook(
        self,
        table: Table | None = None,
        table_name: str = "dataset",
        title: str = "Comparison notebook",
        include_previews: bool = True,
    ) -> Notebook:
        return build_notebook(
            self.selected,
            table=table,
            table_name=table_name,
            title=title,
            include_previews=include_previews,
        )


class NotebookGenerator:
    """Legacy facade: configure once, generate notebooks from tables.

    Deprecated in favour of :class:`repro.Session` /
    :func:`repro.generate_notebook` (which add resilience, checkpoints,
    and resource reuse); direct construction emits one
    ``DeprecationWarning`` per process.  :func:`preset` still returns
    instances without warning — its named configurations remain the
    canonical Table 3/7 reproduction entry point.

    Parameters
    ----------
    config:
        Generation settings (defaults to the paper's).
    solver:
        ``"heuristic"`` (Algorithm 3) or ``"exact"`` (branch-and-bound).
    exact_timeout:
        Wall-clock limit for the exact solver, seconds.
    max_exact_queries:
        The exact solver needs the full distance matrix; instances larger
        than this are refused with a clear error (use the heuristic).
    """

    def __init__(
        self,
        config: GenerationConfig | None = None,
        solver: str = "heuristic",
        exact_timeout: float | None = 60.0,
        max_exact_queries: int = 2000,
    ):
        from repro.deprecation import warn_once

        warn_once(
            "NotebookGenerator",
            "NotebookGenerator is deprecated; use repro.Session / "
            "repro.generate_notebook with repro.ReproConfig instead "
            "(see the README quickstart)",
        )
        self._init(config, solver, exact_timeout, max_exact_queries)

    @classmethod
    def _create(
        cls,
        config: GenerationConfig | None = None,
        solver: str = "heuristic",
        exact_timeout: float | None = 60.0,
        max_exact_queries: int = 2000,
    ) -> "NotebookGenerator":
        """Internal non-warning constructor (used by :func:`preset`)."""
        self = cls.__new__(cls)
        self._init(config, solver, exact_timeout, max_exact_queries)
        return self

    def _init(
        self,
        config: GenerationConfig | None,
        solver: str,
        exact_timeout: float | None,
        max_exact_queries: int,
    ) -> None:
        if solver not in ("heuristic", "exact"):
            raise TAPError(f"unknown solver {solver!r}")
        self.config = config or GenerationConfig()
        self.solver = solver
        self.exact_timeout = exact_timeout
        self.max_exact_queries = max_exact_queries

    def generate(
        self,
        table: Table,
        budget: float = 10.0,
        epsilon_distance: float | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> NotebookRun:
        """Full pipeline: Q generation, TAP resolution, ordered selection."""
        logger.info("generate: %d rows, budget=%g, solver=%s, backend=%s",
                    table.n_rows, budget, self.solver, self.config.backend)
        with obs.span(
            "run", rows=table.n_rows, budget=budget, solver=self.solver,
            backend=self.config.backend,
        ):
            backend = create_backend(self.config.backend, table)
            try:
                outcome = generate_comparison_queries(
                    table, self.config, progress, backend=backend
                )
            finally:
                backend.close()
            if epsilon_distance is None:
                epsilon_distance = DEFAULT_EPSILON_PER_QUERY * max(1.0, budget - 1.0)
            with obs.span("tap.solve", queries=len(outcome.queries)) as tap_span:
                solution = self._solve(outcome.queries, budget, epsilon_distance)
            outcome.timings.tap_solving = tap_span.duration
            selected = [outcome.queries[i] for i in solution.indices]
        logger.info("generate done: %d/%d queries selected in %.3fs",
                    len(selected), len(outcome.queries), outcome.timings.total)
        return NotebookRun(outcome, solution, selected, budget, epsilon_distance)

    def _solve(
        self, queries: Sequence[GeneratedQuery], budget: float, epsilon_distance: float
    ) -> TAPSolution:
        if not queries:
            return TAPSolution((), 0.0, 0.0, 0.0, optimal=True)
        weights = self.config.distance_weights
        interests = [g.interest for g in queries]
        costs = [1.0] * len(queries)
        if self.solver == "heuristic":
            def distance_of(i: int, j: int) -> float:
                return query_distance(queries[i].query, queries[j].query, weights)

            return solve_heuristic_lazy(
                interests, costs, distance_of, HeuristicConfig(budget, epsilon_distance)
            )
        if len(queries) > self.max_exact_queries:
            raise TAPError(
                f"exact solver refused: {len(queries)} queries > "
                f"max_exact_queries={self.max_exact_queries}"
            )
        n = len(queries)
        with obs.span("tap.distance_matrix", n=n):
            matrix = np.zeros((n, n))
            for i in range(n):
                for j in range(i + 1, n):
                    d = query_distance(queries[i].query, queries[j].query, weights)
                    matrix[i, j] = d
                    matrix[j, i] = d
        instance = TAPInstance(list(queries), interests, costs, matrix)
        outcome = solve_exact(
            instance,
            ExactConfig(budget, epsilon_distance, timeout_seconds=self.exact_timeout),
        )
        return outcome.solution


def preset(
    name: str,
    sample_rate: float = 0.1,
    base: GenerationConfig | None = None,
    exact_timeout: float | None = 60.0,
) -> NotebookGenerator:
    """The named generator configurations of Tables 3 and 7."""
    if name not in _PRESET_NAMES:
        raise TAPError(f"unknown preset {name!r}; known: {_PRESET_NAMES}")
    config = base or GenerationConfig()
    solver = "heuristic"
    if name == "naive-exact":
        config = dataclasses.replace(config, evaluator="pairwise")
        solver = "exact"
    elif name == "naive-approx":
        config = dataclasses.replace(config, evaluator="pairwise")
    elif name == "wsc-approx":
        config = dataclasses.replace(config, evaluator="setcover")
    elif name == "wsc-unb-approx":
        config = dataclasses.replace(
            config, evaluator="setcover", sampling=SamplingSpec("unbalanced", sample_rate)
        )
    elif name == "wsc-rand-approx":
        config = dataclasses.replace(
            config, evaluator="setcover", sampling=SamplingSpec("random", sample_rate)
        )
    elif name == "wsc-approx-sig":
        config = dataclasses.replace(
            config,
            evaluator="setcover",
            interestingness=config.interestingness.with_components(
                conciseness_on=False, credibility_on=False
            ),
        )
    elif name == "wsc-approx-sig-cred":
        config = dataclasses.replace(
            config,
            evaluator="setcover",
            interestingness=config.interestingness.with_components(
                conciseness_on=False, credibility_on=True
            ),
        )
    return NotebookGenerator._create(config, solver=solver, exact_timeout=exact_timeout)


def preset_names() -> tuple[str, ...]:
    return _PRESET_NAMES
