"""Comparison-query generation: Algorithm 1, Algorithm 2, presets, pipeline."""

from repro.generation.config import GenerationConfig, SamplingSpec
from repro.generation.evaluators import (
    NaiveEvaluator,
    PairwiseEvaluator,
    SetCoverEvaluator,
    SupportEvaluator,
    build_evaluator,
)
from repro.generation.generator import (
    GeneratedQuery,
    GenerationOutcome,
    PhaseTimings,
    StatsStageResult,
    generate_comparison_queries,
    run_stats_stage,
    run_support_stage,
)
from repro.generation.pipeline import (
    DEFAULT_EPSILON_PER_QUERY,
    NotebookGenerator,
    NotebookRun,
    preset,
    preset_names,
)
from repro.generation.setcover import (
    apply_memory_fallback,
    greedy_weighted_set_cover,
    pairs_covered,
)

__all__ = [
    "DEFAULT_EPSILON_PER_QUERY",
    "GeneratedQuery",
    "GenerationConfig",
    "GenerationOutcome",
    "NaiveEvaluator",
    "NotebookGenerator",
    "NotebookRun",
    "PairwiseEvaluator",
    "PhaseTimings",
    "SamplingSpec",
    "SetCoverEvaluator",
    "StatsStageResult",
    "SupportEvaluator",
    "apply_memory_fallback",
    "build_evaluator",
    "generate_comparison_queries",
    "run_stats_stage",
    "run_support_stage",
    "greedy_weighted_set_cover",
    "pairs_covered",
    "preset",
    "preset_names",
]
