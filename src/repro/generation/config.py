"""Configuration for comparison-query generation and notebook assembly."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.base import BACKEND_NAMES, default_backend_name
from repro.errors import QueryError
from repro.insights.significance import SignificanceConfig
from repro.queries.distance import DEFAULT_WEIGHTS, DistanceWeights
from repro.queries.interestingness import InterestingnessConfig
from repro.relational.aggregates import DEFAULT_COMPARISON_AGGREGATES, is_aggregate


@dataclass(frozen=True, slots=True)
class SamplingSpec:
    """Offline sampling for the statistical tests (Section 5.1.2).

    ``strategy`` is ``"random"`` or ``"unbalanced"``; ``rate`` the kept
    fraction.  Tests run on the sample; support checking, credibility, and
    interestingness always use the full relation (as the paper notes for
    the credibility component).
    """

    strategy: str
    rate: float

    def __post_init__(self) -> None:
        if self.strategy not in ("random", "unbalanced"):
            raise QueryError(f"unknown sampling strategy {self.strategy!r}")
        if not 0 < self.rate <= 1:
            raise QueryError(f"sampling rate must be in (0, 1], got {self.rate}")


@dataclass(frozen=True, slots=True)
class GenerationConfig:
    """Everything Algorithm 1 / Algorithm 2 need.

    Attributes
    ----------
    aggregates:
        Aggregate functions enabled for comparison queries (paper default:
        sum and avg).
    insight_types:
        Insight type codes (default: ``("M", "V")``).
    significance:
        Statistical-test settings (permutations, threshold, BH).
    interestingness:
        Component switches for Definition 4.3.
    distance_weights:
        Weighted-Hamming weights of Section 4.2.
    sampling:
        Optional offline sampling spec for the tests.
    exclude_functional_dependencies:
        Pre-processing step of Section 6.1: skip (grouping, selection)
        attribute pairs linked by an FD.
    prune_transitive:
        Section 3.3: drop insights deducible by transitivity.
    evaluator:
        ``"pairwise"`` — the §5.2.1 bounding (one 2-group-by per attribute
        pair); ``"setcover"`` — Algorithm 2; ``"naive"`` — re-aggregate
        per hypothesis query (the unbounded Algorithm 1, ablation only).
    backend:
        Execution engine for scans and group-by aggregation:
        ``"columnar"`` (in-process NumPy, default) or ``"sqlite"``
        (pushdown to stdlib :mod:`sqlite3`).  The default honours the
        ``REPRO_BACKEND`` environment variable (CI matrix hook).
    memory_budget_bytes:
        Byte budget for Algorithm 2's cache (None = unlimited).
    n_threads:
        Workers for testing and support checking (Section 6.3.3).
    parallel_backend:
        ``"threads"`` (default) or ``"processes"`` for the statistical-test
        phase.  The paper's Java prototype scales with threads; in Python
        the per-pair permutation loop is GIL-bound, so process workers are
        what actually buy wall-clock on multi-core machines (the support
        phase stays threaded either way — its evaluator shares an
        in-memory cache).
    max_pairs_per_attribute:
        Optional cap on enumerated value pairs per attribute (explicitly
        reported when it truncates).
    """

    aggregates: tuple[str, ...] = DEFAULT_COMPARISON_AGGREGATES
    insight_types: tuple[str, ...] = ("M", "V")
    significance: SignificanceConfig = field(default_factory=SignificanceConfig)
    interestingness: InterestingnessConfig = field(default_factory=InterestingnessConfig)
    distance_weights: DistanceWeights = DEFAULT_WEIGHTS
    sampling: SamplingSpec | None = None
    exclude_functional_dependencies: bool = True
    prune_transitive: bool = True
    evaluator: str = "pairwise"
    backend: str = field(default_factory=default_backend_name)
    memory_budget_bytes: int | None = None
    n_threads: int = 1
    parallel_backend: str = "threads"
    max_pairs_per_attribute: int | None = None

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("at least one aggregate function is required")
        for agg in self.aggregates:
            if not is_aggregate(agg):
                raise QueryError(f"unknown aggregate {agg!r}")
        if self.evaluator not in ("pairwise", "setcover", "naive"):
            raise QueryError(f"unknown evaluator {self.evaluator!r}")
        if self.backend not in BACKEND_NAMES:
            raise QueryError(
                f"unknown execution backend {self.backend!r}; known: {BACKEND_NAMES}"
            )
        if self.n_threads < 1:
            raise QueryError("n_threads must be at least 1")
        if self.parallel_backend not in ("threads", "processes"):
            raise QueryError(f"unknown parallel backend {self.parallel_backend!r}")
