"""Configuration for comparison-query generation and notebook assembly."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.base import BACKEND_NAMES, default_backend_name, default_mqo
from repro.errors import QueryError
from repro.insights.significance import SignificanceConfig
from repro.parallel.config import ParallelConfig, default_workers
from repro.queries.distance import DEFAULT_WEIGHTS, DistanceWeights
from repro.queries.interestingness import InterestingnessConfig
from repro.relational.aggregates import DEFAULT_COMPARISON_AGGREGATES, is_aggregate


@dataclass(frozen=True, slots=True)
class SamplingSpec:
    """Offline sampling for the statistical tests (Section 5.1.2).

    ``strategy`` is ``"random"`` or ``"unbalanced"``; ``rate`` the kept
    fraction.  Tests run on the sample; support checking, credibility, and
    interestingness always use the full relation (as the paper notes for
    the credibility component).
    """

    strategy: str
    rate: float

    def __post_init__(self) -> None:
        if self.strategy not in ("random", "unbalanced"):
            raise QueryError(f"unknown sampling strategy {self.strategy!r}")
        if not 0 < self.rate <= 1:
            raise QueryError(f"sampling rate must be in (0, 1], got {self.rate}")


@dataclass(frozen=True, slots=True)
class GenerationConfig:
    """Everything Algorithm 1 / Algorithm 2 need.

    Attributes
    ----------
    aggregates:
        Aggregate functions enabled for comparison queries (paper default:
        sum and avg).
    insight_types:
        Insight type codes (default: ``("M", "V")``).
    significance:
        Statistical-test settings (permutations, threshold, BH).
    interestingness:
        Component switches for Definition 4.3.
    distance_weights:
        Weighted-Hamming weights of Section 4.2.
    sampling:
        Optional offline sampling spec for the tests.
    exclude_functional_dependencies:
        Pre-processing step of Section 6.1: skip (grouping, selection)
        attribute pairs linked by an FD.
    prune_transitive:
        Section 3.3: drop insights deducible by transitivity.
    evaluator:
        ``"pairwise"`` — the §5.2.1 bounding (one 2-group-by per attribute
        pair); ``"setcover"`` — Algorithm 2; ``"naive"`` — re-aggregate
        per hypothesis query (the unbounded Algorithm 1, ablation only).
    backend:
        Execution engine for scans and group-by aggregation:
        ``"columnar"`` (in-process NumPy, default) or ``"sqlite"``
        (pushdown to stdlib :mod:`sqlite3`).  The default honours the
        ``REPRO_BACKEND`` environment variable (CI matrix hook).
    mqo:
        Multi-query optimization: batch each work unit's group-by sets
        through the backend's :meth:`materialize_aggregates` compiler so
        ``statements_executed`` collapses to ~1 per grouping-attribute
        batch (see ``docs/performance.md``).  Default honours the
        ``REPRO_MQO`` environment variable (CI matrix hook; unset = on).
        Notebook output is byte-identical either way — ``False`` is the
        per-set parity oracle.
    memory_budget_bytes:
        Byte budget for Algorithm 2's cache (None = unlimited).
    parallel:
        The sharded execution layer's settings
        (:class:`~repro.parallel.config.ParallelConfig`): worker count,
        pool flavour, restart budget, shard size.  ``None`` (default)
        derives one from the legacy ``n_threads`` / ``parallel_backend``
        fields below — see :meth:`effective_parallel`.
    n_threads:
        Legacy worker count for testing and support checking (Section
        6.3.3).  Superseded by ``parallel`` (``ParallelConfig.workers``);
        still honoured when ``parallel`` is unset.
    parallel_backend:
        Legacy pool flavour, ``"threads"`` (default) or ``"processes"``.
        Superseded by ``parallel`` (``ParallelConfig.backend``).  With
        ``"processes"`` the sharded pool of :mod:`repro.parallel` runs
        both the test and support phases; ``"threads"`` keeps the
        GIL-bound shared-memory pools.
    max_pairs_per_attribute:
        Optional cap on enumerated value pairs per attribute (explicitly
        reported when it truncates).
    """

    aggregates: tuple[str, ...] = DEFAULT_COMPARISON_AGGREGATES
    insight_types: tuple[str, ...] = ("M", "V")
    significance: SignificanceConfig = field(default_factory=SignificanceConfig)
    interestingness: InterestingnessConfig = field(default_factory=InterestingnessConfig)
    distance_weights: DistanceWeights = DEFAULT_WEIGHTS
    sampling: SamplingSpec | None = None
    exclude_functional_dependencies: bool = True
    prune_transitive: bool = True
    evaluator: str = "pairwise"
    backend: str = field(default_factory=default_backend_name)
    mqo: bool = field(default_factory=default_mqo)
    memory_budget_bytes: int | None = None
    parallel: ParallelConfig | None = None
    n_threads: int = 1
    parallel_backend: str = "threads"
    max_pairs_per_attribute: int | None = None

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("at least one aggregate function is required")
        for agg in self.aggregates:
            if not is_aggregate(agg):
                raise QueryError(f"unknown aggregate {agg!r}")
        if self.evaluator not in ("pairwise", "setcover", "naive"):
            raise QueryError(f"unknown evaluator {self.evaluator!r}")
        if self.backend not in BACKEND_NAMES:
            raise QueryError(
                f"unknown execution backend {self.backend!r}; known: {BACKEND_NAMES}"
            )
        if self.n_threads < 1:
            raise QueryError("n_threads must be at least 1")
        if self.parallel_backend not in ("threads", "processes"):
            raise QueryError(f"unknown parallel backend {self.parallel_backend!r}")
        if self.n_threads != 1 or self.parallel_backend != "threads":
            from repro.deprecation import warn_once

            warn_once(
                "GenerationConfig.legacy-parallel",
                "GenerationConfig(n_threads=..., parallel_backend=...) is "
                "deprecated; pass parallel=ParallelConfig(workers=..., "
                "backend=...) or use ReproConfig.with_parallel(...)",
            )

    def effective_parallel(self) -> ParallelConfig:
        """The :class:`ParallelConfig` actually in force.

        ``parallel`` wins when set.  Otherwise one is derived from the
        legacy knobs: an explicit ``n_threads > 1`` keeps its value and
        pool flavour; the 1-thread default defers to ``REPRO_WORKERS``
        (matching :func:`~repro.parallel.config.default_workers`) so the
        CI matrix can turn workers on without touching code.
        """
        if self.parallel is not None:
            return self.parallel
        if self.n_threads > 1:
            return ParallelConfig(workers=self.n_threads, backend=self.parallel_backend)
        return ParallelConfig(workers=default_workers())
