"""Greedy weighted set cover for Algorithm 2 (Section 5.2.2).

The paper reduces "find the cheapest collection of group-by sets whose
pairs cover all 2-group-by sets" to weighted set cover and solves it with
the classic greedy (weight / newly-covered ratio), whose approximation
factor is H(|U|) and complexity O(|U| · log |G|) per the cited survey.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

from repro import obs
from repro.errors import QueryError


def pairs_covered(group_by_set: frozenset[str]) -> set[frozenset[str]]:
    """All attribute pairs a group-by set covers (roll-up targets)."""
    return {frozenset(p) for p in combinations(sorted(group_by_set), 2)}


def greedy_weighted_set_cover(
    universe: Sequence[frozenset[str]],
    candidates: Mapping[frozenset[str], float],
) -> list[frozenset[str]]:
    """Greedy cover of ``universe`` (pairs) by ``candidates`` (weighted sets).

    Each iteration picks the candidate minimizing ``weight / #newly
    covered pairs``.  Raises if the universe is not coverable.
    """
    uncovered = set(universe)
    if not uncovered:
        return []
    with obs.span(
        "generation.setcover", universe=len(uncovered), candidates=len(candidates)
    ) as sp:
        coverage = {g: pairs_covered(g) for g in candidates}
        chosen: list[frozenset[str]] = []
        while uncovered:
            obs.counter("setcover.iterations").inc()
            best_set: frozenset[str] | None = None
            best_ratio = float("inf")
            for candidate, weight in candidates.items():
                gain = len(coverage[candidate] & uncovered)
                if gain == 0:
                    continue
                ratio = weight / gain
                if ratio < best_ratio - 1e-15 or (
                    abs(ratio - best_ratio) <= 1e-15
                    and best_set is not None
                    and sorted(candidate) < sorted(best_set)
                ):
                    best_ratio = ratio
                    best_set = candidate
            if best_set is None:
                missing = sorted(tuple(sorted(p)) for p in uncovered)
                raise QueryError(f"set cover infeasible; uncovered pairs: {missing}")
            chosen.append(best_set)
            uncovered -= coverage[best_set]
        sp.set(sets_chosen=len(chosen))
    obs.counter("setcover.sets_chosen").inc(len(chosen))
    return chosen


def apply_memory_fallback(
    chosen: list[frozenset[str]],
    weights: Mapping[frozenset[str], float],
    memory_budget: float | None,
) -> list[frozenset[str]]:
    """The paper's fallback: replace over-budget sets by their 2-group-bys.

    "In case the smallest subset of aggregates does not fit in memory, we
    implement a fallback strategy that successively loads the smallest
    possible aggregates (i.e. the group-by sets of U)."  Any chosen set
    whose estimated footprint exceeds the budget is replaced by the
    2-attribute sets it was covering.
    """
    if memory_budget is None:
        return chosen
    result: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    for group_by_set in chosen:
        if weights.get(group_by_set, 0.0) <= memory_budget:
            if group_by_set not in seen:
                seen.add(group_by_set)
                result.append(group_by_set)
            continue
        for pair in sorted(pairs_covered(group_by_set), key=sorted):
            if pair not in seen:
                seen.add(pair)
                result.append(pair)
    return result
