"""The comparison-query generation core (Algorithm 1 and its optimized forms).

One code path serves every implementation row of Table 3 — they differ
only in configuration:

* which *evaluator* materializes aggregates (naive / pairwise bounding /
  Algorithm 2 set cover);
* whether the statistical tests run on an offline *sample*;
* how many *threads* the test and support phases use.

The output carries everything the TAP needs (queries, interests) plus the
phase timings the scalability figures break down.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.backend import create_backend
from repro.backend.base import ExecutionBackend
from repro.generation.config import GenerationConfig
from repro.generation.evaluators import SupportEvaluator, build_evaluator
from repro.insights.enumeration import enumerate_candidates
from repro.insights.insight import CandidateInsight, InsightEvidence, TestedInsight
from repro.insights.significance import (
    family_chunks,
    finalize_attribute,
    run_attribute_chunk,
)
from repro.parallel.shards import (
    ShardStore,
    evidence_supported,
    run_stats_shards,
    run_support_shards,
)
from repro.insights.transitivity import prune_transitive
from repro.queries.comparison import ComparisonQuery
from repro.queries.interestingness import conciseness, insight_term
from repro.relational.functional_deps import detect_functional_dependencies, related_attributes
from repro.relational.moments import touched_labels
from repro.relational.table import Table
from repro.runtime.deadline import Deadline
from repro.stats.delta import (
    IncrementalRequest,
    StatsMemo,
    incremental_config_token,
    merge_attribute,
    plan_incremental,
    segment_families,
)
from repro.stats.sampling import offline_test_sources

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class PhaseTimings:
    """Wall-clock seconds per pipeline phase (Figure 7's breakdown)."""

    preprocessing: float = 0.0
    sampling: float = 0.0
    statistical_tests: float = 0.0
    hypothesis_evaluation: float = 0.0
    tap_solving: float = 0.0

    @property
    def generation_total(self) -> float:
        return (
            self.preprocessing
            + self.sampling
            + self.statistical_tests
            + self.hypothesis_evaluation
        )

    @property
    def total(self) -> float:
        return self.generation_total + self.tap_solving

    def as_dict(self) -> dict[str, float]:
        return {
            "preprocessing": self.preprocessing,
            "sampling": self.sampling,
            "statistical_tests": self.statistical_tests,
            "hypothesis_evaluation": self.hypothesis_evaluation,
            "tap_solving": self.tap_solving,
        }


@dataclass(frozen=True, slots=True)
class GeneratedQuery:
    """A comparison query retained in Q, with its scoring ingredients."""

    query: ComparisonQuery
    tuples_aggregated: int
    n_groups: int
    supported: tuple[InsightEvidence, ...]
    interest: float

    @property
    def insights(self) -> tuple[TestedInsight, ...]:
        return tuple(e.insight for e in self.supported)


@dataclass(slots=True)
class GenerationOutcome:
    """Everything the generation phase produces."""

    queries: list[GeneratedQuery]
    significant: list[TestedInsight]
    evidences: dict[tuple, InsightEvidence]
    timings: PhaseTimings
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        return len(self.queries)


@dataclass(slots=True)
class StatsStageResult:
    """Everything the statistical stage produces (the checkpointable unit).

    Holds the significant insights plus the FD-derived exclusions the
    support stage needs, so an interrupted run can resume from here without
    re-running a single permutation test.

    ``memo`` — present when the run was memoizable (no offline sampling,
    shared permutation batches, and a table version token supplied) —
    carries the raw per-family test results so a later run over an
    *appended* table can re-test only the touched pair families
    (:mod:`repro.stats.delta`).
    """

    significant: list[TestedInsight]
    excluded_pairs: set[frozenset[str]]
    timings: PhaseTimings
    counters: dict[str, int] = field(default_factory=dict)
    memo: StatsMemo | None = None


def run_stats_stage(
    table: Table,
    config: GenerationConfig | None = None,
    progress: Callable[[str], None] | None = None,
    deadline: Deadline | None = None,
    backend: ExecutionBackend | None = None,
    shard_store: ShardStore | None = None,
    incremental: IncrementalRequest | None = None,
    version: str | None = None,
) -> StatsStageResult:
    """FD preprocessing, offline sampling, and the statistical tests.

    The expensive half of Algorithm 1 (lines 1-3).  ``deadline`` threads a
    cooperative cancellation checkpoint into the test loops; on expiry a
    :class:`~repro.errors.DeadlineExceeded` escapes with no partial state
    — unless ``shard_store`` is given, in which case the sharded process
    pool records each completed shard there (the mid-shard checkpoint) and
    a resumed run skips them.  ``backend`` supplies the rows the offline
    samples draw from; the tests themselves are row-level statistics and
    run in-process or on the worker pool per ``config.effective_parallel()``.

    ``incremental`` carries a :class:`~repro.stats.delta.StatsMemo` from an
    earlier run over a *prefix* of ``table`` (the caller has verified the
    version match); only pair families touched by the appended rows — or
    whose candidate set changed — are re-tested, and the merged raw results
    are element-identical to a full run's.  When the memo cannot soundly
    serve this configuration the stage logs a warning and runs in full.
    ``version`` is the table's content-version token; when given (and the
    run is memoizable) the result carries a fresh memo for the next append.
    """
    config = config or GenerationConfig()
    timings = PhaseTimings()
    counters: dict[str, int] = {}
    say = progress or (lambda message: None)

    # -- preprocessing: functional dependencies ------------------------------
    with obs.span("stats.preprocessing", rows=table.n_rows) as sp:
        excluded_pairs: set[frozenset[str]] = set()
        if config.exclude_functional_dependencies:
            excluded_pairs = related_attributes(detect_functional_dependencies(table))
        sp.set(excluded_pairs=len(excluded_pairs))
    timings.preprocessing = sp.duration
    if excluded_pairs:
        say(f"excluding {len(excluded_pairs)} FD-related attribute pairs")
        logger.debug("excluding %d FD-related attribute pairs", len(excluded_pairs))

    # -- offline sampling -----------------------------------------------------
    strategy = config.sampling.strategy if config.sampling is not None else "none"
    with obs.span("stats.sampling", strategy=strategy) as sp:
        test_source = offline_test_sources(
            backend if backend is not None else table,
            config.sampling,
            config.significance.seed,
        )
        if config.sampling is not None:
            if isinstance(test_source, Table):
                say(f"testing on a random sample of {test_source.n_rows} rows")
            else:
                sizes = {t.n_rows for t in test_source.values()}
                say(f"testing on per-attribute balanced samples of ~{max(sizes)} rows")
    timings.sampling = sp.duration

    # -- statistical tests ------------------------------------------------------
    logger.info("statistical tests: %d permutations, engine=%s",
                config.significance.n_permutations, config.significance.engine)
    delta_input = None
    if incremental is not None:
        memo = incremental.memo
        if memo.n_rows > table.n_rows:
            logger.warning(
                "incremental stats disabled: memo covers %d rows but the "
                "table holds only %d", memo.n_rows, table.n_rows,
            )
        else:
            dirty_values = {
                name: touched_labels(table, name, memo.n_rows)
                for name in table.schema.categorical_names
            }
            delta_input = (memo, dirty_values)

    with obs.span(
        "stats.tests",
        engine=config.significance.engine,
        permutations=config.significance.n_permutations,
        workers=config.effective_parallel().workers,
    ) as sp:
        tested, records, plan = _run_tests(
            test_source, config, deadline, shard_store,
            delta=delta_input, collect_memo=version is not None,
        )
        if plan is not None:
            counters["stats_partitions_skipped"] = plan.skipped
            counters["stats_partitions_retested"] = plan.retested
            obs.counter("stats.partitions_skipped").inc(plan.skipped)
            obs.counter("stats.partitions_retested").inc(plan.retested)
            say(f"incremental: {plan.skipped} pair families reused, "
                f"{plan.retested} re-tested")
            logger.info("incremental stats: %d pair families reused, %d re-tested",
                        plan.skipped, plan.retested)
        elif incremental is not None:
            counters["stats_partitions_skipped"] = 0
        counters["insights_tested"] = len(tested)
        significant = [t for t in tested if t.is_significant(config.significance.threshold)]
        counters["insights_significant"] = len(significant)
        if config.prune_transitive:
            with obs.span("stats.transitivity", before=len(significant)) as prune_span:
                significant = prune_transitive(significant)
                prune_span.set(after=len(significant))
        counters["insights_after_pruning"] = len(significant)
        sp.set(tested=len(tested), significant=counters["insights_significant"])
    timings.statistical_tests = sp.duration
    obs.counter("stats.candidates_tested").inc(counters["insights_tested"])
    obs.counter("stats.insights_significant").inc(counters["insights_significant"])
    obs.counter("stats.insights_pruned").inc(
        counters["insights_significant"] - counters["insights_after_pruning"]
    )
    say(f"{counters['insights_significant']} significant insights "
        f"({counters['insights_after_pruning']} after transitivity pruning)")
    logger.info("%d/%d insights significant (%d after pruning) in %.3fs",
                counters["insights_significant"], counters["insights_tested"],
                counters["insights_after_pruning"], timings.statistical_tests)
    memo = None
    if records is not None and version is not None:
        memo = StatsMemo(
            version, table.n_rows, incremental_config_token(config), records
        )
    return StatsStageResult(significant, excluded_pairs, timings, counters, memo)


def run_support_stage(
    table: Table,
    stats: StatsStageResult,
    config: GenerationConfig | None = None,
    progress: Callable[[str], None] | None = None,
    deadline: Deadline | None = None,
    backend: ExecutionBackend | None = None,
) -> GenerationOutcome:
    """Hypothesis-query evaluation and scoring over a stats-stage result.

    The second half of Algorithm 1 (lines 4-17); runs against the *full*
    relation regardless of any test-phase sampling.  Merges the stats
    stage's timings and counters into the returned outcome.

    All aggregation passes go through ``backend`` (built from
    ``config.backend`` — and closed on the way out — when not supplied by
    the caller).
    """
    config = config or GenerationConfig()
    say = progress or (lambda message: None)
    timings = stats.timings
    counters = dict(stats.counters)

    owns_backend = backend is None
    if backend is None:
        backend = create_backend(config.backend, table)
    statements_before = backend.statements_executed
    try:
        with obs.span(
            "generation.support",
            evaluator=config.evaluator,
            backend=backend.name,
            insights=len(stats.significant),
            mqo=config.mqo,
        ) as sp:
            evaluator = build_evaluator(
                backend, config.evaluator, config.memory_budget_bytes, mqo=config.mqo
            )
            logger.info("hypothesis evaluation: evaluator=%s backend=%s mqo=%s over %d insights",
                        config.evaluator, backend.name, config.mqo, len(stats.significant))
            queries, evidences, n_hypothesis, worker_counts, plan = _evaluate_support(
                table, stats.significant, stats.excluded_pairs, evaluator, config, deadline
            )
            if worker_counts is None:
                aggregation_queries = evaluator.queries_sent
                statements = backend.statements_executed - statements_before
            else:
                # Sharded path: the traffic happened on the workers'
                # evaluators and backends; their counts shipped back.
                # Credit them to the caller's backend so run-level
                # statement accounting is worker-count invariant.
                aggregation_queries = worker_counts["queries_sent"]
                statements = worker_counts["statements"]
                backend.statements_executed += statements
            counters["hypothesis_queries_evaluated"] = n_hypothesis
            counters["queries_supported"] = len(queries)
            counters["aggregation_queries_sent"] = aggregation_queries
            counters["backend_statements_executed"] = statements
            # The multi-query plan shape (what a batching backend was asked
            # to compile): set-cover ships its whole chosen cover as one
            # batch; the pairwise strategies batch per grouping attribute.
            if config.evaluator == "setcover":
                chosen = getattr(evaluator, "chosen_sets", ())
                plan = {"batches": 1 if chosen else 0, "sets": len(chosen)}
            counters["mqo_plan_batches"] = plan["batches"]
            counters["mqo_plan_sets"] = plan["sets"]

            with obs.span("generation.scoring", candidates=len(queries)):
                scored = _score_and_deduplicate(queries, config)
            counters["queries_final"] = len(scored)
            sp.set(hypothesis_queries=n_hypothesis, queries_final=len(scored))
    finally:
        if owns_backend:
            backend.close()
    timings.hypothesis_evaluation = sp.duration
    obs.counter("generation.hypothesis_queries").inc(n_hypothesis)
    obs.counter("generation.queries_supported").inc(len(queries))
    obs.counter("generation.aggregation_queries").inc(aggregation_queries)
    obs.counter("generation.queries_final").inc(len(scored))
    obs.current_metrics().record_peak_rss()
    say(f"{len(scored)} comparison queries retained in Q")
    logger.info("%d comparison queries retained in Q (%.3fs)",
                len(scored), timings.hypothesis_evaluation)
    return GenerationOutcome(scored, stats.significant, evidences, timings, counters)


def generate_comparison_queries(
    table: Table,
    config: GenerationConfig | None = None,
    progress: Callable[[str], None] | None = None,
    deadline: Deadline | None = None,
    backend: ExecutionBackend | None = None,
) -> GenerationOutcome:
    """Run insight testing + hypothesis evaluation and build the set Q."""
    config = config or GenerationConfig()
    stats = run_stats_stage(table, config, progress, deadline, backend=backend)
    return run_support_stage(table, stats, config, progress, deadline, backend=backend)


# ---------------------------------------------------------------------------
# Phase: statistical tests
# ---------------------------------------------------------------------------


def _run_tests(
    test_source: Table | dict[str, Table],
    config: GenerationConfig,
    deadline: Deadline | None = None,
    shard_store: ShardStore | None = None,
    delta: tuple[StatsMemo, dict[str, frozenset]] | None = None,
    collect_memo: bool = False,
) -> tuple[list[TestedInsight], dict[str, list] | None, object]:
    """Run the per-attribute significance tests, possibly in parallel.

    ``test_source`` is either one table shared by every attribute (full
    data or a uniform random sample) or a mapping attribute -> table
    (per-attribute balanced samples of the unbalanced strategy).

    ``delta`` — ``(memo, dirty_values)`` from a verified prior run — routes
    only the dirty pair families through the runners and splices the
    memo's stored raw results in for the rest; ``collect_memo`` asks for
    the per-family records of this run (for the *next* memo).  Returns
    ``(tested, records_or_None, plan_or_None)``.

    ``config.effective_parallel()`` picks the execution strategy: the
    sharded subprocess pool of :mod:`repro.parallel` (``processes``, with
    worker-side deadline checkpoints, crash isolation, and optional
    mid-shard checkpointing through ``shard_store``), a thread pool
    (``threads``, the legacy GIL-bound path), or plain sequential when one
    worker is configured.  All three produce identical results — shards
    are cut at pair-family boundaries and permutation batches derive their
    RNG from chunk-independent keys.  The incremental path feeds its dirty
    work through the same runners, so the parity holds there too.
    """
    if isinstance(test_source, Table):
        tables = {name: test_source for name in test_source.schema.categorical_names}
    else:
        tables = test_source
    checkpoint = None
    if deadline is not None and deadline.limited:
        checkpoint = lambda: deadline.check("statistical tests")  # noqa: E731

    work: list[tuple[str, Table, list[CandidateInsight]]] = []
    for attribute, sample in tables.items():
        if checkpoint is not None:
            checkpoint()
        candidates = list(
            enumerate_candidates(
                sample,
                insight_types=config.insight_types,
                attributes=[attribute],
                max_pairs_per_attribute=config.max_pairs_per_attribute,
            )
        )
        if candidates:
            work.append((attribute, sample, candidates))

    parallel = config.effective_parallel()
    memoizable = config.sampling is None and config.significance.share_across_pairs

    plan = None
    if delta is not None:
        memo, dirty_values = delta
        plan = plan_incremental(memo, work, dirty_values, config)

    if plan is not None:
        raw: dict[str, tuple[list, list]] = {}
        if plan.dirty_work:
            _execute_tests(
                plan.dirty_work, config, parallel, deadline, shard_store,
                checkpoint, raw_out=raw,
            )
        tested: list[TestedInsight] = []
        records: dict[str, list] = {}
        for attribute, _, _ in work:
            oriented, results, family_records = merge_attribute(
                plan, attribute, raw.get(attribute, ((), ()))
            )
            tested.extend(finalize_attribute(oriented, results, config.significance))
            records[attribute] = family_records
        return tested, (records if collect_memo else None), plan

    want_raw = collect_memo and memoizable
    raw = {} if want_raw else None
    tested = _execute_tests(
        work, config, parallel, deadline, shard_store, checkpoint, raw_out=raw
    )
    records = None
    if want_raw:
        records = {
            attribute: segment_families(candidates, *raw.get(attribute, ((), ())))
            for attribute, _, candidates in work
        }
    return tested, records, None


def _execute_tests(
    work: list[tuple[str, Table, list[CandidateInsight]]],
    config: GenerationConfig,
    parallel,
    deadline: Deadline | None,
    shard_store: ShardStore | None,
    checkpoint,
    raw_out: dict[str, tuple[list, list]] | None = None,
) -> list[TestedInsight]:
    """Feed a work list through the configured runner.

    The single execution funnel for both full and incremental runs: the
    sharded process pool, the thread pool, or plain sequential.  When
    ``raw_out`` is given it receives each attribute's merged raw
    ``(oriented, results)`` before the BH correction.
    """
    if not work:
        return []
    if parallel.active and parallel.backend == "processes":
        return run_stats_shards(
            work, config.significance, parallel, deadline,
            store=shard_store, raw_out=raw_out,
        )

    if not parallel.active or len(work) <= 1:
        tested: list[TestedInsight] = []
        for attribute, sample, candidates in work:
            oriented, results = run_attribute_chunk(
                sample, attribute, candidates, config.significance, checkpoint
            )
            if raw_out is not None:
                raw_out[attribute] = (list(oriented), list(results))
            tested.extend(finalize_attribute(oriented, results, config.significance))
        return tested

    # Thread pool: chunk within attributes so one large-domain attribute
    # cannot serialize the whole phase.  Chunks are cut only at pair-family
    # boundaries: the batched kernel then sees whole families per worker
    # and candidate order is preserved.  The BH correction is applied per
    # attribute family after merging the chunks; key-derived permutation
    # batches make the outcome chunking-invariant.
    jobs: list[tuple[str, Table, list[CandidateInsight]]] = []
    for attribute, sample, candidates in work:
        for chunk in family_chunks(candidates, parallel.chunk_size):
            jobs.append((attribute, sample, chunk))

    merged: dict[str, tuple[list, list]] = {attribute: ([], []) for attribute, _, _ in work}
    with ThreadPoolExecutor(max_workers=parallel.workers) as pool:
        try:
            futures = [
                (attribute, pool.submit(run_attribute_chunk, sample, attribute, chunk,
                                        config.significance, checkpoint))
                for attribute, sample, chunk in jobs
            ]
            for attribute, future in futures:
                if checkpoint is not None:
                    checkpoint()
                oriented, results = future.result()
                merged[attribute][0].extend(oriented)
                merged[attribute][1].extend(results)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    if raw_out is not None:
        raw_out.update(merged)
    tested = []
    for attribute, _, _ in work:
        oriented, results = merged[attribute]
        tested.extend(finalize_attribute(oriented, results, config.significance))
    return tested


# ---------------------------------------------------------------------------
# Phase: hypothesis evaluation / support checking
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _SupportedQuery:
    """Pre-dedup record of a query together with its result statistics."""

    query: ComparisonQuery
    tuples_aggregated: int
    n_groups: int
    supported: list[InsightEvidence]


def _evaluate_support(
    table: Table,
    significant: Sequence[TestedInsight],
    excluded_pairs: set[frozenset[str]],
    evaluator: SupportEvaluator,
    config: GenerationConfig,
    deadline: Deadline | None = None,
) -> tuple[list[_SupportedQuery], dict[tuple, InsightEvidence], int, dict | None, dict]:
    """Evaluate every hypothesis query; returns the supported set.

    The fourth element is ``None`` on the in-process paths; on the sharded
    process path it carries the workers' aggregation-query and
    backend-statement counts (the parent's evaluator and backend never see
    that traffic).  The fifth is the multi-query plan shape — how many
    per-grouping-attribute batches cover how many distinct group-by sets —
    computed parent-side so it is identical at every worker count.
    """
    categorical = table.schema.categorical_names
    evidences: dict[tuple, InsightEvidence] = {}

    # Group insights by (selection attribute, unordered pair, measure): one
    # aggregated comparison answers every insight type of the group.
    groups: dict[tuple, list[InsightEvidence]] = {}
    valid_groupings: dict[str, list[str]] = {}
    for insight in significant:
        candidate = insight.candidate
        if candidate.attribute not in valid_groupings:
            valid_groupings[candidate.attribute] = [
                a
                for a in categorical
                if a != candidate.attribute
                and frozenset((a, candidate.attribute)) not in excluded_pairs
            ]
        n_postulating = len(valid_groupings[candidate.attribute]) * len(config.aggregates)
        evidence = InsightEvidence(insight, n_supporting=0, n_postulating=n_postulating)
        evidences[insight.key] = evidence
        lo, hi = sorted((candidate.val, candidate.val_other))
        groups.setdefault((candidate.attribute, lo, hi, candidate.measure), []).append(evidence)

    lock = threading.Lock()
    supported_queries: list[_SupportedQuery] = []
    hypothesis_count = 0
    items = list(groups.items())
    parallel = config.effective_parallel()

    # The full pair demand, partitioned per grouping attribute — the shard
    # unit — so every execution path (sequential, threads, process shards)
    # issues the same per-grouping batches to the backend's multi-query
    # compiler.
    demand: dict[str, list[frozenset[str]]] = {}
    distinct_pairs: set[frozenset[str]] = set()
    for attribute in sorted(valid_groupings):
        for grouping in valid_groupings[attribute]:
            pair = frozenset((grouping, attribute))
            demand.setdefault(grouping, []).append(pair)
            distinct_pairs.add(pair)
    plan = {"batches": len(demand), "sets": len(distinct_pairs)}

    # Sharded process pool, one shard per grouping attribute.  Workers
    # build their own backend + evaluator; the parent replays the
    # sequential iteration order over their compact records, so the query
    # list, evidence counts, and counters match workers=1 exactly.  The
    # set-cover evaluator is excluded: its up-front materialization is
    # shared *across* groupings, so per-grouping workers would repeat it
    # (breaking statement-count parity and wasting the cover).
    if (
        parallel.active
        and parallel.backend == "processes"
        and config.evaluator != "setcover"
        and items
    ):
        records, queries_sent, statements = run_support_shards(
            table, items, valid_groupings, config.aggregates,
            backend_name=config.backend,
            evaluator_name=config.evaluator,
            memory_budget=config.memory_budget_bytes,
            parallel=parallel,
            deadline=deadline,
            mqo=config.mqo,
        )
        for group_index, (key, members) in enumerate(items):
            attribute, lo, hi, measure_name = key
            for grouping in valid_groupings[attribute]:
                for agg in config.aggregates:
                    hypothesis_count += len(members)
                    record = records.get((group_index, grouping, agg))
                    if record is None:
                        continue
                    tuples_aggregated, n_groups, indices = record
                    supported_here = [members[i] for i in indices]
                    for evidence in supported_here:
                        evidence.n_supporting += 1
                    supported_queries.append(
                        _SupportedQuery(
                            ComparisonQuery(grouping, attribute, lo, hi,
                                            measure_name, agg),
                            tuples_aggregated, n_groups, supported_here,
                        )
                    )
        extra = {"queries_sent": queries_sent, "statements": statements}
        return supported_queries, evidences, hypothesis_count, extra, plan

    def process_group(key: tuple, members: list[InsightEvidence]) -> tuple[list[_SupportedQuery], int]:
        attribute, lo, hi, measure_name = key
        local_queries: list[_SupportedQuery] = []
        local_count = 0
        with obs.span(
            "generation.evaluate_group",
            attribute=attribute, pair=f"{lo}|{hi}", measure=measure_name,
        ) as sp:
            for grouping in valid_groupings[attribute]:
                if deadline is not None:
                    deadline.check("hypothesis evaluation")
                for agg in config.aggregates:
                    query = ComparisonQuery(grouping, attribute, lo, hi, measure_name, agg)
                    result = evaluator.evaluate(query)
                    local_count += len(members)
                    supported_here: list[InsightEvidence] = []
                    for evidence in members:
                        if evidence_supported(result, evidence, lo):
                            supported_here.append(evidence)
                    if supported_here:
                        local_queries.append(
                            _SupportedQuery(
                                query, result.tuples_aggregated, result.n_groups, supported_here
                            )
                        )
            sp.set(hypotheses=local_count, supported=len(local_queries))
        return local_queries, local_count

    # Announce the demand before evaluating: one batched backend call per
    # grouping attribute (no-op for non-batching evaluators or mqo=off),
    # mirroring the per-grouping shards of the process path.
    for grouping in sorted(demand):
        if deadline is not None:
            deadline.check("hypothesis evaluation")
        evaluator.plan(demand[grouping])

    if not parallel.active or len(items) <= 1:
        outputs = [process_group(key, members) for key, members in items]
    else:
        with ThreadPoolExecutor(max_workers=parallel.workers) as pool:
            futures = [pool.submit(process_group, key, members) for key, members in items]
            outputs = [f.result() for f in futures]

    for local_queries, local_count in outputs:
        hypothesis_count += local_count
        for record in local_queries:
            for evidence in record.supported:
                with lock:
                    evidence.n_supporting += 1
            supported_queries.append(record)

    return supported_queries, evidences, hypothesis_count, None, plan


# ---------------------------------------------------------------------------
# Phase: scoring and deduplication (Algorithm 1, lines 14-17)
# ---------------------------------------------------------------------------


def _score_and_deduplicate(
    records: list[_SupportedQuery], config: GenerationConfig
) -> list[GeneratedQuery]:
    cfg = config.interestingness
    scored: list[GeneratedQuery] = []
    for record in records:
        total = sum(insight_term(e, cfg) for e in record.supported)
        if cfg.use_conciseness:
            total *= conciseness(
                record.tuples_aggregated, record.n_groups, cfg.alpha, cfg.delta
            )
        scored.append(
            GeneratedQuery(
                _oriented(record),
                record.tuples_aggregated,
                record.n_groups,
                tuple(record.supported),
                total,
            )
        )

    best: dict[tuple, GeneratedQuery] = {}
    for generated in scored:
        key = generated.query.dedup_key
        incumbent = best.get(key)
        if incumbent is None or generated.interest > incumbent.interest:
            best[key] = generated
    return sorted(best.values(), key=lambda g: -g.interest)


def _oriented(record: _SupportedQuery) -> ComparisonQuery:
    """Flip the query's value order so the dominant side displays first.

    The dominant side is taken from the most significant supported insight;
    flipping does not affect θ, γ, or interest.
    """
    top = max(record.supported, key=lambda e: e.insight.significance)
    query = record.query
    if top.insight.candidate.val == query.val:
        return query
    return ComparisonQuery(
        query.group_by,
        query.selection_attribute,
        query.val_other,
        query.val,
        query.measure,
        query.agg,
    )
