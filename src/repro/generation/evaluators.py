"""Support-check evaluators: how hypothesis queries get their data.

Three strategies, matching Table 3's implementation column:

* :class:`NaiveEvaluator` — re-aggregates the base table for every
  hypothesis query (the unbounded Algorithm 1; ablation arm);
* :class:`PairwiseEvaluator` — the §5.2.1 bounding: one 2-attribute
  group-by per (grouping, selection) pair, materialized lazily and reused
  for every value pair, measure, and aggregate;
* :class:`SetCoverEvaluator` — Algorithm 2: a weighted-set-cover choice of
  larger group-by sets materialized up front; every pair is answered by
  rolling a covering aggregate up.

All three run their aggregation passes through an
:class:`~repro.backend.base.ExecutionBackend` (a bare :class:`Table` is
accepted and wrapped in the columnar adapter), expose
``evaluate(query) -> ComparisonResult``, and count ``queries_sent`` —
the paper's "number of queries sent to the DBMS" metric, i.e. the number
of aggregation passes the strategy issued.  With a pushdown backend those
passes are real SQL statements; the backend's ``statements_executed``
counts them from the engine side.
"""

from __future__ import annotations

import threading
from typing import Protocol, Sequence

from repro.backend import as_backend
from repro.backend.base import ExecutionBackend
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult, evaluate_comparison_cached
from repro.relational.cube import PartialAggregateCache, pair_group_by_sets
from repro.relational.statistics import estimate_aggregate_bytes
from repro.relational.table import Table
from repro.generation.setcover import apply_memory_fallback, greedy_weighted_set_cover


class SupportEvaluator(Protocol):
    """Interface of the three evaluation strategies."""

    queries_sent: int

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:  # pragma: no cover
        ...


class NaiveEvaluator:
    """One full aggregation pass per hypothesis query (no reuse)."""

    def __init__(self, source: "Table | ExecutionBackend"):
        self._backend = as_backend(source)
        self.queries_sent = 0

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        self.queries_sent += 1
        return self._backend.evaluate_comparison(query)


class PairwiseEvaluator:
    """§5.2.1 bounding: lazy per-pair 2-group-by materialization.

    At most ``n(n-1)/2`` aggregation passes regardless of how many
    hypothesis queries are evaluated.
    """

    def __init__(self, source: "Table | ExecutionBackend"):
        self._backend = as_backend(source)
        self._cache = PartialAggregateCache()
        self._building: dict[frozenset[str], threading.Event] = {}
        self._lock = threading.Lock()  # the support phase may be threaded
        self.queries_sent = 0

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        key = frozenset((query.group_by, query.selection_attribute))
        # Reserve the key under the lock so exactly one thread builds each
        # pair aggregate; the others wait on its event instead of issuing a
        # redundant (and double-counted) aggregation pass.
        with self._lock:
            done = self._building.get(key)
            if done is None:
                done = threading.Event()
                self._building[key] = done
                builder = True
            else:
                builder = False
        if builder:
            try:
                aggregate = self._backend.materialize_aggregate(sorted(key))
                with self._lock:
                    self._cache.add(aggregate)
                    self.queries_sent += 1
            except BaseException:
                with self._lock:
                    self._building.pop(key, None)
                raise
            finally:
                done.set()
        else:
            done.wait()
            if not self._cache.covers(query.group_by, query.selection_attribute):
                # The builder failed and un-reserved the key; retry (we may
                # become the builder this time).
                return self.evaluate(query)
        return evaluate_comparison_cached(self._cache, query)


class SetCoverEvaluator:
    """Algorithm 2: cover all pairs with few large group-by sets.

    The cover is chosen on optimizer *estimates* (Cardenas) as in the
    paper; ``memory_budget_bytes`` triggers the fallback replacement of
    over-budget sets by plain 2-group-bys.
    """

    def __init__(
        self,
        source: "Table | ExecutionBackend",
        attributes: Sequence[str] | None = None,
        memory_budget_bytes: int | None = None,
    ):
        self._backend = as_backend(source)
        table = self._backend.table
        names = list(attributes or table.schema.categorical_names)
        universe = pair_group_by_sets(names)
        from repro.relational.cube import powerset_group_by_sets

        candidates = {
            g: estimate_aggregate_bytes(table, sorted(g))
            for g in powerset_group_by_sets(names, min_size=2)
        }
        chosen = greedy_weighted_set_cover(universe, candidates)
        chosen = apply_memory_fallback(chosen, candidates, memory_budget_bytes)
        self.chosen_sets = tuple(chosen)
        self._cache = PartialAggregateCache()
        self.queries_sent = 0
        for group_by_set in chosen:
            self._cache.add(self._backend.materialize_aggregate(sorted(group_by_set)))
            self.queries_sent += 1

    @property
    def cache_bytes(self) -> int:
        return self._cache.total_bytes()

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        return evaluate_comparison_cached(self._cache, query)


def build_evaluator(
    source: "Table | ExecutionBackend", kind: str, memory_budget_bytes: int | None = None
) -> SupportEvaluator:
    """Factory keyed by :class:`GenerationConfig.evaluator`."""
    if kind == "naive":
        return NaiveEvaluator(source)
    if kind == "pairwise":
        return PairwiseEvaluator(source)
    if kind == "setcover":
        return SetCoverEvaluator(source, memory_budget_bytes=memory_budget_bytes)
    raise ValueError(f"unknown evaluator kind {kind!r}")
