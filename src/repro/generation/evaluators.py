"""Support-check evaluators: how hypothesis queries get their data.

Three strategies, matching Table 3's implementation column:

* :class:`NaiveEvaluator` — re-aggregates the base table for every
  hypothesis query (the unbounded Algorithm 1; ablation arm);
* :class:`PairwiseEvaluator` — the §5.2.1 bounding: one 2-attribute
  group-by per (grouping, selection) pair, materialized lazily and reused
  for every value pair, measure, and aggregate;
* :class:`SetCoverEvaluator` — Algorithm 2: a weighted-set-cover choice of
  larger group-by sets materialized up front; every pair is answered by
  rolling a covering aggregate up.

All three expose ``evaluate(query) -> ComparisonResult`` and a
``queries_sent`` counter (the paper's "number of queries sent to the
DBMS" metric).
"""

from __future__ import annotations

import threading
from typing import Protocol, Sequence

from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult, evaluate_comparison, evaluate_comparison_cached
from repro.relational.cube import MaterializedAggregate, PartialAggregateCache, pair_group_by_sets
from repro.relational.statistics import estimate_aggregate_bytes
from repro.relational.table import Table
from repro.generation.setcover import apply_memory_fallback, greedy_weighted_set_cover


class SupportEvaluator(Protocol):
    """Interface of the three evaluation strategies."""

    queries_sent: int

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:  # pragma: no cover
        ...


class NaiveEvaluator:
    """One full aggregation pass per hypothesis query (no reuse)."""

    def __init__(self, table: Table):
        self._table = table
        self.queries_sent = 0

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        self.queries_sent += 1
        return evaluate_comparison(self._table, query)


class PairwiseEvaluator:
    """§5.2.1 bounding: lazy per-pair 2-group-by materialization.

    At most ``n(n-1)/2`` aggregation passes regardless of how many
    hypothesis queries are evaluated.
    """

    def __init__(self, table: Table):
        self._table = table
        self._cache = PartialAggregateCache()
        self._built: set[frozenset[str]] = set()
        self._lock = threading.Lock()  # the support phase may be threaded
        self.queries_sent = 0

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        key = frozenset((query.group_by, query.selection_attribute))
        if key not in self._built:
            aggregate = MaterializedAggregate.build(self._table, key)
            with self._lock:
                if key not in self._built:
                    self._cache.add(aggregate)
                    self._built.add(key)
                    self.queries_sent += 1
        return evaluate_comparison_cached(self._cache, query)


class SetCoverEvaluator:
    """Algorithm 2: cover all pairs with few large group-by sets.

    The cover is chosen on optimizer *estimates* (Cardenas) as in the
    paper; ``memory_budget_bytes`` triggers the fallback replacement of
    over-budget sets by plain 2-group-bys.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str] | None = None,
        memory_budget_bytes: int | None = None,
    ):
        self._table = table
        names = list(attributes or table.schema.categorical_names)
        universe = pair_group_by_sets(names)
        from repro.relational.cube import powerset_group_by_sets

        candidates = {
            g: estimate_aggregate_bytes(table, sorted(g))
            for g in powerset_group_by_sets(names, min_size=2)
        }
        chosen = greedy_weighted_set_cover(universe, candidates)
        chosen = apply_memory_fallback(chosen, candidates, memory_budget_bytes)
        self.chosen_sets = tuple(chosen)
        self._cache = PartialAggregateCache()
        self.queries_sent = 0
        for group_by_set in chosen:
            self._cache.add(MaterializedAggregate.build(table, sorted(group_by_set)))
            self.queries_sent += 1

    @property
    def cache_bytes(self) -> int:
        return self._cache.total_bytes()

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        return evaluate_comparison_cached(self._cache, query)


def build_evaluator(
    table: Table, kind: str, memory_budget_bytes: int | None = None
) -> SupportEvaluator:
    """Factory keyed by :class:`GenerationConfig.evaluator`."""
    if kind == "naive":
        return NaiveEvaluator(table)
    if kind == "pairwise":
        return PairwiseEvaluator(table)
    if kind == "setcover":
        return SetCoverEvaluator(table, memory_budget_bytes=memory_budget_bytes)
    raise ValueError(f"unknown evaluator kind {kind!r}")
