"""Support-check evaluators: how hypothesis queries get their data.

Three strategies, matching Table 3's implementation column:

* :class:`NaiveEvaluator` — re-aggregates the base table for every
  hypothesis query (the unbounded Algorithm 1; ablation arm);
* :class:`PairwiseEvaluator` — the §5.2.1 bounding: one 2-attribute
  group-by per (grouping, selection) pair, reused for every value pair,
  measure, and aggregate;
* :class:`SetCoverEvaluator` — Algorithm 2: a weighted-set-cover choice of
  larger group-by sets materialized up front; every pair is answered by
  rolling a covering aggregate up.

All three run their aggregation passes through an
:class:`~repro.backend.base.ExecutionBackend` (a bare :class:`Table` is
accepted and wrapped in the columnar adapter), expose
``evaluate(query) -> ComparisonResult``, and count ``queries_sent`` —
the paper's "number of queries sent to the DBMS" metric, i.e. the number
of aggregation passes the strategy issued.  With a pushdown backend those
passes are real SQL statements; the backend's ``statements_executed``
counts them from the engine side.

Since the COMPARE-style multi-query optimization, the two bounded
strategies *plan their full demand up front* instead of materializing one
key at a time: :meth:`PairwiseEvaluator.plan` takes every (grouping,
selection) pair of a work unit and :class:`SetCoverEvaluator` ships its
whole chosen cover, both routed through
:func:`~repro.backend.base.materialize_batch` so a batched backend
compiles them into one (or few) engine statements.  ``queries_sent``
still counts *group-by sets materialized* — the logical demand — so it is
invariant under batching; only the backend's ``statements_executed``
collapses.  ``mqo=False`` (or ``REPRO_MQO=0``) restores the per-set path
as a parity oracle.
"""

from __future__ import annotations

import threading
from typing import Iterable, Protocol, Sequence

from repro.backend import as_backend
from repro.backend.base import (
    AggregateRequest,
    BackendError,
    ExecutionBackend,
    default_mqo,
    materialize_batch,
)
from repro.queries.comparison import ComparisonQuery
from repro.queries.evaluate import ComparisonResult, evaluate_comparison_cached
from repro.relational.cube import (
    PartialAggregateCache,
    pair_group_by_sets,
    powerset_group_by_sets,
)
from repro.relational.statistics import estimate_aggregate_bytes
from repro.relational.table import Table
from repro.generation.setcover import apply_memory_fallback, greedy_weighted_set_cover

#: How often a waiter retries after the pair-aggregate builder it waited on
#: failed (it may become the builder itself on retry).  Bounded: a backend
#: that fails deterministically must surface its error, not recurse forever.
MAX_BUILD_ATTEMPTS = 3

#: Largest group-by set the set-cover enumeration considers.  The raw
#: candidate collection of Algorithm 2 is the powerset of the categorical
#: attributes — exponential in attribute count — but sets wider than a few
#: attributes approach base-table cardinality and are never picked by the
#: weighted cover, so capping the enumeration changes nothing on realistic
#: schemas while keeping wide ones polynomial (O(n^4) at the default).
DEFAULT_MAX_SET_SIZE = 4

#: Cap on the number of candidate sets handed to the greedy cover.  All
#: 2-attribute sets are always kept (they alone guarantee the universe is
#: coverable); the remaining slots go to the cheapest larger sets by
#: estimated size, with a deterministic name tie-break.
DEFAULT_MAX_CANDIDATES = 256


class SupportEvaluator(Protocol):
    """Interface of the three evaluation strategies."""

    queries_sent: int

    def plan(self, pairs: Iterable[Iterable[str]]) -> None:  # pragma: no cover
        """Announce upcoming (grouping, selection) demand for batching."""
        ...

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:  # pragma: no cover
        ...


class NaiveEvaluator:
    """One full aggregation pass per hypothesis query (no reuse)."""

    def __init__(self, source: "Table | ExecutionBackend"):
        self._backend = as_backend(source)
        self.queries_sent = 0

    def plan(self, pairs: Iterable[Iterable[str]]) -> None:
        """No-op: the ablation arm deliberately reuses nothing."""

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        self.queries_sent += 1
        return self._backend.evaluate_comparison(query)


class PairwiseEvaluator:
    """§5.2.1 bounding: per-pair 2-group-by materialization.

    At most ``n(n-1)/2`` aggregation passes regardless of how many
    hypothesis queries are evaluated.  :meth:`plan` pre-materializes a
    whole batch of pairs through the backend's multi-query compiler (one
    statement per batch on a batched backend); :meth:`evaluate` serves
    planned pairs from the cache and falls back to lazy per-pair builds
    for anything unplanned, so callers that never call :meth:`plan` see
    the classic behavior.
    """

    def __init__(self, source: "Table | ExecutionBackend", mqo: bool | None = None):
        self._backend = as_backend(source)
        self._mqo = default_mqo() if mqo is None else mqo
        self._cache = PartialAggregateCache()
        self._building: dict[frozenset[str], threading.Event] = {}
        self._lock = threading.Lock()  # the support phase may be threaded
        self.queries_sent = 0

    def plan(self, pairs: Iterable[Iterable[str]]) -> None:
        """Batch-materialize every not-yet-covered pair in one backend call.

        Pairs already covered (or being built by a concurrent thread) are
        skipped; the rest are reserved under the lock and compiled as one
        batch, so on a batched backend the whole work unit costs one
        statement.  With ``mqo`` off this is a no-op and :meth:`evaluate`
        materializes lazily as before.
        """
        if not self._mqo:
            return
        with self._lock:
            todo: list[frozenset[str]] = []
            for pair in pairs:
                key = frozenset(pair)
                attrs = sorted(key)
                if key in self._building or self._cache.covers(attrs[0], attrs[-1]):
                    continue
                self._building[key] = threading.Event()
                todo.append(key)
        if not todo:
            return
        requests = [AggregateRequest.of(sorted(key)) for key in todo]
        try:
            aggregates = materialize_batch(self._backend, requests)
        except BaseException:
            with self._lock:
                events = [self._building.pop(key, None) for key in todo]
            for event in events:
                if event is not None:
                    event.set()
            raise
        with self._lock:
            for aggregate in aggregates:
                self._cache.add(aggregate)
            self.queries_sent += len(aggregates)
            events = [self._building[key] for key in todo]
        for event in events:
            event.set()

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        key = frozenset((query.group_by, query.selection_attribute))
        # Bounded retry: each round either serves from the cache, becomes
        # the builder (build failures propagate immediately), or waits for
        # a concurrent builder.  A waiter retries only when that builder
        # failed and un-reserved the key — after MAX_BUILD_ATTEMPTS such
        # failures we give up rather than recurse forever.
        for _attempt in range(MAX_BUILD_ATTEMPTS):
            with self._lock:
                if self._cache.covers(query.group_by, query.selection_attribute):
                    return evaluate_comparison_cached(self._cache, query)
                # Reserve the key under the lock so exactly one thread
                # builds each pair aggregate; the others wait on its event
                # instead of issuing a redundant (and double-counted)
                # aggregation pass.
                done = self._building.get(key)
                if done is None:
                    done = threading.Event()
                    self._building[key] = done
                    builder = True
                else:
                    builder = False
            if builder:
                try:
                    aggregate = self._backend.materialize_aggregate(sorted(key))
                    with self._lock:
                        self._cache.add(aggregate)
                        self.queries_sent += 1
                except BaseException:
                    with self._lock:
                        self._building.pop(key, None)
                    raise
                finally:
                    done.set()
                return evaluate_comparison_cached(self._cache, query)
            done.wait()
        raise BackendError(
            f"pair aggregate for {sorted(key)} failed to build after "
            f"{MAX_BUILD_ATTEMPTS} attempts"
        )


class SetCoverEvaluator:
    """Algorithm 2: cover all pairs with few large group-by sets.

    The cover is chosen on optimizer *estimates* (Cardenas) as in the
    paper; ``memory_budget_bytes`` triggers the fallback replacement of
    over-budget sets by plain 2-group-bys.  Candidate enumeration is
    bounded by ``max_set_size`` / ``max_candidates`` (see
    :data:`DEFAULT_MAX_SET_SIZE`) so wide schemas stay polynomial; the
    chosen cover — known in full up front — is materialized as one batch
    through the backend's multi-query compiler unless ``mqo`` is off.
    """

    def __init__(
        self,
        source: "Table | ExecutionBackend",
        attributes: Sequence[str] | None = None,
        memory_budget_bytes: int | None = None,
        mqo: bool | None = None,
        max_set_size: int = DEFAULT_MAX_SET_SIZE,
        max_candidates: int = DEFAULT_MAX_CANDIDATES,
    ):
        self._backend = as_backend(source)
        mqo = default_mqo() if mqo is None else mqo
        table = self._backend.table
        names = list(attributes or table.schema.categorical_names)
        universe = pair_group_by_sets(names)
        candidates = {
            g: estimate_aggregate_bytes(table, sorted(g))
            for g in powerset_group_by_sets(names, min_size=2, max_size=max_set_size)
        }
        candidates = _cap_candidates(candidates, max_candidates)
        chosen = greedy_weighted_set_cover(universe, candidates)
        chosen = apply_memory_fallback(chosen, candidates, memory_budget_bytes)
        self.chosen_sets = tuple(chosen)
        self._cache = PartialAggregateCache()
        self.queries_sent = 0
        requests = [AggregateRequest.of(sorted(g)) for g in chosen]
        if mqo:
            aggregates = materialize_batch(self._backend, requests)
        else:
            aggregates = [
                self._backend.materialize_aggregate(r.attributes) for r in requests
            ]
        for aggregate in aggregates:
            self._cache.add(aggregate)
            self.queries_sent += 1

    @property
    def cache_bytes(self) -> int:
        return self._cache.total_bytes()

    def plan(self, pairs: Iterable[Iterable[str]]) -> None:
        """No-op: the whole cover was materialized at construction."""

    def evaluate(self, query: ComparisonQuery) -> ComparisonResult:
        return evaluate_comparison_cached(self._cache, query)


def _cap_candidates(
    candidates: dict[frozenset[str], float], max_candidates: int
) -> dict[frozenset[str], float]:
    """Bound the candidate collection while keeping the universe coverable.

    Every 2-attribute set survives unconditionally (the cover can always
    fall back to them), so the cap only prunes *larger* sets: cheapest by
    estimated bytes first, sorted-name tie-break for determinism.
    """
    if len(candidates) <= max_candidates:
        return candidates
    pairs = {g: w for g, w in candidates.items() if len(g) == 2}
    larger = sorted(
        ((w, tuple(sorted(g)), g) for g, w in candidates.items() if len(g) > 2),
    )
    keep = dict(pairs)
    for weight, _, group_by_set in larger:
        if len(keep) >= max_candidates:
            break
        keep[group_by_set] = weight
    return keep


def build_evaluator(
    source: "Table | ExecutionBackend",
    kind: str,
    memory_budget_bytes: int | None = None,
    mqo: bool | None = None,
) -> SupportEvaluator:
    """Factory keyed by :class:`GenerationConfig.evaluator`.

    ``mqo`` toggles batched multi-aggregate compilation for the bounded
    strategies (``None`` defers to ``$REPRO_MQO``, default on).
    """
    if kind == "naive":
        return NaiveEvaluator(source)
    if kind == "pairwise":
        return PairwiseEvaluator(source, mqo=mqo)
    if kind == "setcover":
        return SetCoverEvaluator(
            source, memory_budget_bytes=memory_budget_bytes, mqo=mqo
        )
    raise ValueError(f"unknown evaluator kind {kind!r}")
