"""Exporters: Chrome trace-event JSON, Prometheus text, and tree summaries.

Three consumers of one run's observability data:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format's ``"X"`` (complete) events, loadable in ``chrome://tracing``
  or https://ui.perfetto.dev;
* :func:`to_prometheus_text` — the Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot;
* :func:`format_span_tree` / :func:`format_hotspots` — the human-readable
  summary the ``repro profile`` command prints.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer

#: Attribute types that serialize losslessly into trace-event args.
_SCALAR = (str, int, float, bool, type(None))


def _clean_args(attrs: dict) -> dict:
    return {
        key: (value if isinstance(value, _SCALAR) else repr(value))
        for key, value in attrs.items()
    }


def chrome_trace_events(tracer: Tracer, include_open: bool = False) -> list[dict]:
    """One ``"X"`` (complete) event per span, in start order.

    Timestamps are microseconds on the tracer's monotonic clock, rebased
    to the earliest span so traces start near zero.  Open spans are
    excluded by default; with ``include_open`` they are emitted with
    their elapsed-so-far duration and an ``"open": true`` arg, so a
    still-running job's trace stays a connected tree.
    """
    spans = [s for s in tracer.spans() if s.closed or include_open]
    if not spans:
        return []
    base = min(s.start for s in spans)
    pid = os.getpid()
    events = []
    for span in sorted(spans, key=lambda s: s.start):
        args = _clean_args(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.error is not None:
            args["error"] = span.error
        if not span.closed:
            args["open"] = True
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - base) * 1e6,
                "dur": span.elapsed * 1e6,
                "pid": pid,
                "tid": span.thread_id,
                "args": args,
            }
        )
    return events


def to_chrome_trace(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    include_open: bool = False,
) -> dict:
    """The full trace document (object form, so metadata can ride along)."""
    doc = {
        "traceEvents": chrome_trace_events(tracer, include_open=include_open),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics.snapshot()}
    return doc


def write_chrome_trace(
    tracer: Tracer, path: str | Path, metrics: MetricsRegistry | None = None
) -> None:
    Path(path).write_text(
        json.dumps(to_chrome_trace(tracer, metrics), indent=1), encoding="utf-8"
    )


def summarize_spans(tracer: Tracer, top: int = 20) -> list[dict]:
    """Compact per-name aggregation of a trace, heaviest names first.

    The flight recorder keeps this instead of whole span trees: for each
    span name, the occurrence count, total seconds (elapsed-so-far for
    spans still open), how many are open, and how many recorded errors.
    """
    by_name: dict[str, dict] = {}
    for span in tracer.spans():
        entry = by_name.setdefault(
            span.name, {"name": span.name, "count": 0, "seconds": 0.0,
                        "open": 0, "errors": 0}
        )
        entry["count"] += 1
        entry["seconds"] += span.elapsed
        if not span.closed:
            entry["open"] += 1
        if span.error is not None:
            entry["errors"] += 1
    ranked = sorted(by_name.values(), key=lambda e: -e["seconds"])[:top]
    for entry in ranked:
        entry["seconds"] = round(entry["seconds"], 6)
    return ranked


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_MANGLE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Dotted metric name -> legal Prometheus name, ``repro_``-prefixed."""
    return "repro_" + _NAME_MANGLE.sub("_", name)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_labels(labels: dict, extra: dict | None = None) -> str:
    """Render ``{k="v",...}`` (empty string for no labels)."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus_text(metrics: MetricsRegistry) -> str:
    """The text exposition format (one ``# TYPE`` line per family).

    Counters get the ``_total`` suffix, histograms are emitted in the
    real Prometheus histogram exposition — cumulative ``_bucket`` series
    with ``le`` upper bounds (``+Inf`` included) plus ``_sum``/``_count``
    — and every series carries its instrument's label set.
    """
    from repro.obs.metrics import Counter, Gauge

    lines: list[str] = []
    typed: set[str] = set()

    def type_line(mangled: str, kind: str) -> None:
        if mangled not in typed:
            typed.add(mangled)
            lines.append(f"# TYPE {mangled} {kind}")

    for instrument in metrics.instruments():
        mangled = prometheus_name(instrument.name)
        label_text = prometheus_labels(instrument.labels)
        if isinstance(instrument, Counter):
            type_line(mangled, "counter")
            lines.append(f"{mangled}_total{label_text} {instrument.value:g}")
        elif isinstance(instrument, Gauge):
            type_line(mangled, "gauge")
            lines.append(f"{mangled} {instrument.value:g}" if not label_text
                         else f"{mangled}{label_text} {instrument.value:g}")
        else:
            type_line(mangled, "histogram")
            for bound, cumulative in instrument.cumulative_buckets():
                bucket_labels = prometheus_labels(
                    instrument.labels, {"le": f"{bound:g}"}
                )
                lines.append(f"{mangled}_bucket{bucket_labels} {cumulative}")
            inf_labels = prometheus_labels(instrument.labels, {"le": "+Inf"})
            lines.append(f"{mangled}_bucket{inf_labels} {instrument.count}")
            lines.append(f"{mangled}_sum{label_text} {instrument.total:g}")
            lines.append(f"{mangled}_count{label_text} {instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Human-readable summaries
# ---------------------------------------------------------------------------

#: Below this share of the root's duration a subtree is elided from the
#: printed tree (every span still reaches the trace file).
_TREE_MIN_SHARE = 0.001

#: Sibling spans with the same name collapse into one aggregate line when
#: there are more than this many of them.
_COLLAPSE_AT = 5


def format_span_tree(tracer: Tracer, max_depth: int = 6) -> str:
    """Indented tree of span durations, attrs, and share of the run.

    Large sibling families of the same name (per-attribute tests,
    per-group evaluations) collapse to ``name ×N`` aggregate lines.
    """
    spans = [s for s in tracer.spans() if s.closed]
    if not spans:
        return "(no spans recorded)"
    by_parent: dict[int | None, list[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for siblings in by_parent.values():
        siblings.sort(key=lambda s: s.start)
    roots = by_parent.get(None, [])
    total = sum(s.duration for s in roots) or 1e-12

    lines: list[str] = []

    def describe(span: Span) -> str:
        share = span.duration / total
        text = f"{span.name:<40} {span.duration * 1e3:9.1f}ms  {share:6.1%}"
        attrs = _clean_args(span.attrs)
        if span.error is not None:
            attrs["error"] = span.error
        if attrs:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            text += f"  [{rendered}]"
        return text

    def visit(span: Span, depth: int) -> None:
        if depth > max_depth or span.duration / total < _TREE_MIN_SHARE:
            return
        indent = "  " * depth
        lines.append(indent + describe(span))
        children = by_parent.get(span.span_id, [])
        by_name: dict[str, list[Span]] = {}
        for child in children:
            by_name.setdefault(child.name, []).append(child)
        for name, group in by_name.items():
            if len(group) > _COLLAPSE_AT:
                seconds = sum(c.duration for c in group)
                share = seconds / total
                lines.append(
                    "  " * (depth + 1)
                    + f"{name} ×{len(group):<35} {seconds * 1e3:9.1f}ms  {share:6.1%}"
                )
            else:
                for child in group:
                    visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def format_hotspots(tracer: Tracer, top_k: int = 10) -> str:
    """Top-k span names by *self* time (duration minus direct children)."""
    totals = tracer.self_times()
    if not totals:
        return "(no spans recorded)"
    grand = sum(totals.values()) or 1e-12
    ranked = sorted(totals.items(), key=lambda item: -item[1])[:top_k]
    lines = [f"top {len(ranked)} hotspots (self time):"]
    for rank, (name, seconds) in enumerate(ranked, start=1):
        lines.append(
            f"  {rank:2d}. {name:<40} {seconds * 1e3:9.1f}ms  {seconds / grand:6.1%}"
        )
    return "\n".join(lines)


def metrics_summary_line(metrics: MetricsRegistry) -> str:
    """One-line digest of the most load-bearing counters (CLI output)."""
    snapshot = metrics.snapshot()["counters"]
    parts = []
    for name, label in (
        ("stats.candidates_tested", "candidates tested"),
        ("stats.insights_significant", "significant"),
        ("generation.hypothesis_queries", "hypothesis queries"),
        ("generation.queries_final", "queries in Q"),
        ("tap.exact.nodes", "B&B nodes"),
        ("tap.heuristic.insertions", "insertions"),
        ("notebook.cells", "cells"),
    ):
        value = snapshot.get(name)
        if value:
            parts.append(f"{value:g} {label}")
    return "metrics: " + (", ".join(parts) if parts else "(none recorded)")
