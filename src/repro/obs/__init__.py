"""repro.obs — zero-dependency tracing and metrics for the pipeline.

The standing instrumentation surface: hierarchical :class:`Span` trees
over a monotonic clock, a :class:`MetricsRegistry` of counters / gauges /
histograms, and exporters for Chrome trace-event JSON, Prometheus text,
and human-readable summaries.  Everything is stdlib-only and safe to
leave enabled — recording a span is two clock reads and a list append.

The pipeline instruments itself against the *ambient* tracer and
registry accessed through the module-level helpers below::

    from repro import obs

    with obs.span("stats.tests", engine="permutation") as sp:
        ...
    obs.counter("stats.candidates_tested").inc(n)

Tools that need an isolated capture (the ``repro profile`` command,
benchmarks, tests) swap in fresh instances for the duration::

    with obs.capture() as (tracer, metrics):
        run_pipeline()
    export.write_chrome_trace(tracer, "out.json", metrics)

Span names and the documented metric names are a stable public contract;
see ``docs/observability.md`` for the taxonomy.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.export import (
    chrome_trace_events,
    format_hotspots,
    format_span_tree,
    metrics_summary_line,
    summarize_spans,
    to_chrome_trace,
    to_prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labeled_name,
)
from repro.obs.spans import Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "capture",
    "chrome_trace_events",
    "counter",
    "current_metrics",
    "current_tracer",
    "format_hotspots",
    "format_span_tree",
    "gauge",
    "histogram",
    "labeled_name",
    "metrics_summary_line",
    "reset",
    "span",
    "summarize_spans",
    "to_chrome_trace",
    "to_prometheus_text",
    "use",
    "write_chrome_trace",
]

_tracer = Tracer()
_metrics = MetricsRegistry()


def current_tracer() -> Tracer:
    """The ambient tracer the pipeline records spans into."""
    return _tracer


def current_metrics() -> MetricsRegistry:
    """The ambient metrics registry."""
    return _metrics


def span(name: str, **attrs):
    """Open a span on the ambient tracer (context manager)."""
    return _tracer.span(name, **attrs)


def counter(name: str, labels: dict | None = None) -> Counter:
    return _metrics.counter(name, labels)


def gauge(name: str, labels: dict | None = None) -> Gauge:
    return _metrics.gauge(name, labels)


def histogram(
    name: str,
    labels: dict | None = None,
    buckets: tuple[float, ...] | None = None,
) -> Histogram:
    return _metrics.histogram(name, labels, buckets=buckets)


def reset() -> None:
    """Clear the ambient tracer and registry (start of an isolated run)."""
    _tracer.reset()
    _metrics.reset()


@contextmanager
def use(tracer: Tracer, metrics: MetricsRegistry) -> Iterator[None]:
    """Temporarily swap the ambient tracer and registry.

    Worker threads spawned inside the block see the swapped instances
    (the ambient pair is module state, not thread-local); concurrent
    captures from different threads are not supported.
    """
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    _tracer, _metrics = tracer, metrics
    try:
        yield
    finally:
        _tracer, _metrics = previous


@contextmanager
def capture() -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Fresh tracer + registry installed for the block, returned for export."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    with use(tracer, metrics):
        yield tracer, metrics
