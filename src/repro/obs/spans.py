"""Hierarchical spans over a monotonic clock (the tracing half of ``repro.obs``).

A :class:`Span` is one timed region of the pipeline — a stage, a
sub-stage, or a single unit of work such as testing one attribute's
candidates.  Spans nest: each thread keeps its own stack, so a span
opened inside another becomes its child, and work dispatched to worker
threads attaches to the run's root span when the worker has no open
span of its own.  The whole subsystem is stdlib-only.

Span *names* are a stable public contract (see ``docs/observability.md``);
variable detail (which attribute, how many candidates) travels in the
span's ``attrs`` dict, never in the name.

Usage::

    tracer = Tracer()
    with tracer.span("stats.tests", engine="permutation") as span:
        ...                     # work
        span.set(candidates=n)  # attach results discovered along the way
    tracer.duration_of("stats.tests")
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Iterator


class Span:
    """One timed region: name, attributes, parentage, and a clock interval.

    ``start``/``end`` are raw monotonic-clock readings (seconds); only
    differences between them are meaningful.  ``end`` is None while the
    span is open.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "thread_id",
        "start", "end", "error", "_clock",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        span_id: int,
        parent_id: int | None,
        thread_id: int,
        clock: Callable[[], float],
    ):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self._clock = clock
        self.start = clock()
        self.end: float | None = None
        self.error: str | None = None

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to close (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def elapsed(self) -> float:
        """Seconds since start, live: reads the clock while the span is open."""
        if self.end is not None:
            return self.end - self.start
        return self._clock() - self.start

    def set(self, **attrs) -> "Span":
        """Merge attributes into the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.2f}ms" if self.closed else "open"
        return f"Span({self.name!r}, {state})"


class _SpanContext:
    """Context manager wrapping one span: closes on exit, records errors."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        error = None if exc is None else f"{type(exc).__name__}: {exc}"
        self._tracer.finish(self._span, error=error)
        return False  # never swallow


class Tracer:
    """Thread-safe span collector with per-thread nesting.

    Parameters
    ----------
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        # Fallback parent for spans opened on threads with an empty stack
        # (pool workers): the oldest still-open span of the run.
        self._open_roots: list[Span] = []

    # -- span lifecycle ------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, **attrs) -> Span:
        """Open a span manually; prefer :meth:`span` where possible."""
        stack = self._stack()
        with self._lock:
            parent = stack[-1] if stack else (
                self._open_roots[0] if self._open_roots else None
            )
            span = Span(
                name,
                dict(attrs),
                next(self._ids),
                parent.span_id if parent is not None else None,
                threading.get_ident(),
                self._clock,
            )
            self._spans.append(span)
            if parent is None:
                self._open_roots.append(span)
        stack.append(span)
        return span

    def finish(self, span: Span, error: str | None = None) -> None:
        """Close a span.  Idempotent; unwinds any unclosed children."""
        if span.closed:
            return
        span.end = self._clock()
        if error is not None:
            span.error = error
        stack = self._stack()
        if span in stack:
            # Unwind to (and including) this span so an exception that
            # skipped inner `finish` calls cannot corrupt the stack.
            while stack:
                top = stack.pop()
                if top is span:
                    break
                if not top.closed:
                    top.end = span.end
        with self._lock:
            if span in self._open_roots:
                self._open_roots.remove(span)

    def span(self, name: str, **attrs) -> _SpanContext:
        """Context manager: open on entry, close on exit (also on raise)."""
        return _SpanContext(self, self.start(name, **attrs))

    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- introspection -------------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of every span recorded so far (open ones included)."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def duration_of(self, name: str) -> float:
        """Total closed-span seconds under ``name`` (0.0 when absent)."""
        return sum(s.duration for s in self.find(name))

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans() if s.parent_id is None]

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) traversal in start order."""
        spans = self.spans()
        by_parent: dict[int | None, list[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        for siblings in by_parent.values():
            siblings.sort(key=lambda s: s.start)

        def visit(span: Span, depth: int) -> Iterator[tuple[Span, int]]:
            yield span, depth
            for child in by_parent.get(span.span_id, []):
                yield from visit(child, depth + 1)

        for root in by_parent.get(None, []):
            yield from visit(root, 0)

    # -- cross-process adoption ----------------------------------------------

    def export(self) -> list[dict]:
        """Serialize every span for adoption by another tracer.

        Times are rebased so the earliest start is 0.0 — monotonic-clock
        readings are process-local, so only the *shape* of the subtree and
        the relative offsets travel across the boundary.  Open spans
        export with ``end: None``.
        """
        spans = self.spans()
        if not spans:
            return []
        base = min(span.start for span in spans)
        return [
            {
                "name": span.name,
                "attrs": dict(span.attrs),
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start": span.start - base,
                "end": None if span.end is None else span.end - base,
                "error": span.error,
            }
            for span in spans
        ]

    def adopt(
        self,
        exported: list[dict],
        *,
        parent: Span | None = None,
        anchor: float | None = None,
        wrapper_name: str = "adopted",
        wrapper_attrs: dict | None = None,
    ) -> Span:
        """Graft an :meth:`export`-ed subtree into this tracer.

        A wrapper span named ``wrapper_name`` is created under ``parent``
        (or as a root) spanning the subtree's extent; exported spans keep
        their relative layout beneath it, re-identified with this tracer's
        ids.  ``anchor`` places the wrapper's start on this tracer's clock
        (default: now minus the subtree's extent, i.e. "it just finished").
        Used to fold worker-process traces into the main trace.
        """
        extent = 0.0
        for record in exported:
            end = record["end"]
            if end is not None:
                extent = max(extent, end)
        if anchor is None:
            anchor = self._clock() - extent
        with self._lock:
            wrapper = Span(
                wrapper_name,
                dict(wrapper_attrs or {}),
                next(self._ids),
                parent.span_id if parent is not None else None,
                threading.get_ident(),
                self._clock,
            )
            wrapper.start = anchor
            wrapper.end = anchor + extent
            self._spans.append(wrapper)
            id_map: dict[int, int] = {}
            for record in exported:
                span = Span(
                    record["name"],
                    dict(record["attrs"]),
                    next(self._ids),
                    None,
                    wrapper.thread_id,
                    self._clock,
                )
                id_map[record["span_id"]] = span.span_id
                old_parent = record["parent_id"]
                span.parent_id = id_map.get(
                    old_parent if old_parent is not None else -1,
                    wrapper.span_id,
                )
                span.start = anchor + record["start"]
                end = record["end"]
                span.end = anchor + (extent if end is None else end)
                span.error = record["error"]
                self._spans.append(span)
        return wrapper

    def reset(self) -> None:
        """Drop every recorded span (the per-thread stacks clear lazily)."""
        with self._lock:
            self._spans.clear()
            self._open_roots.clear()
        self._local = threading.local()

    def self_times(self) -> dict[str, float]:
        """Per-name *self* seconds: own duration minus direct children's.

        The basis of hotspot ranking — a stage whose time is fully
        explained by its children contributes nothing itself.
        """
        spans = self.spans()
        child_total: dict[int, float] = {}
        for span in spans:
            if span.parent_id is not None:
                child_total[span.parent_id] = (
                    child_total.get(span.parent_id, 0.0) + span.duration
                )
        totals: dict[str, float] = {}
        for span in spans:
            if not span.closed:
                continue
            own = span.duration - child_total.get(span.span_id, 0.0)
            totals[span.name] = totals.get(span.name, 0.0) + max(0.0, own)
        return totals
