"""Counters, gauges, and histograms (the metrics half of ``repro.obs``).

A :class:`MetricsRegistry` is a thread-safe, get-or-create namespace of
named instruments:

* :class:`Counter` — monotonically increasing count (candidates tested,
  solver nodes visited, permutation batches reused);
* :class:`Gauge` — last-written value (peak RSS, queue depths);
* :class:`Histogram` — streaming summary of observations (count / sum /
  min / max / mean), enough for the Prometheus summary exposition without
  holding samples.

Metric names use dotted lowercase (``stats.candidates_tested``); the
Prometheus exporter mangles them to the legal underscore form.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down; reads report the last write."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Keep the high-water mark (peak RSS style updates)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of a series of observations."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe namespace of instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> dict:
        """JSON-ready dump: {counters: {...}, gauges: {...}, histograms: {...}}."""
        with self._lock:
            instruments = dict(self._instruments)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.summary()
        return out

    def record_peak_rss(self) -> float | None:
        """Sample the process's peak RSS into ``process.peak_rss_bytes``.

        Uses :mod:`resource` (POSIX); returns None where unavailable.
        Linux reports ``ru_maxrss`` in KiB, macOS in bytes — normalized
        here to bytes.
        """
        try:
            import resource
            import sys
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return None
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform != "darwin":
            peak *= 1024
        self.gauge("process.peak_rss_bytes").max(peak)
        return float(peak)
