"""Counters, gauges, and histograms (the metrics half of ``repro.obs``).

A :class:`MetricsRegistry` is a thread-safe, get-or-create namespace of
named instruments:

* :class:`Counter` — monotonically increasing count (candidates tested,
  solver nodes visited, permutation batches reused);
* :class:`Gauge` — last-written value (peak RSS, queue depths);
* :class:`Histogram` — bucketed summary of observations (count / sum /
  min / max / mean plus cumulative bucket counts), enough for the real
  Prometheus histogram exposition without holding samples.

Every instrument may carry a **label set** — a small ``dict[str, str]``
such as ``{"dataset": "covid", "outcome": "completed"}``.  Instruments
are keyed by ``(name, sorted(labels))``: the same family name with two
different label sets is two independent instruments, but a family name
is bound to exactly one *kind* (counter/gauge/histogram) for the
registry's lifetime, labels or not.

Metric names use dotted lowercase (``stats.candidates_tested``); the
Prometheus exporter mangles them to the legal underscore form.  In JSON
snapshots, labeled instruments render as ``name{k=v,...}`` keys so
unlabeled metrics keep their historical plain-name keys.

Registries merge: :meth:`MetricsRegistry.export` emits a JSON-safe list
of instrument states and :meth:`MetricsRegistry.merge` folds one into
another (counters and histograms add, gauges keep the high-water mark) —
the primitive behind shipping worker-process metrics across the pool's
IPC boundary and folding per-job serve registries back into the resident
session's registry.
"""

from __future__ import annotations

import threading

#: Default latency-oriented bucket upper bounds (seconds).  ``+Inf`` is
#: implicit — the histogram's total count covers it.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

def _normalize_labels(labels: dict | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def labeled_name(name: str, labels: dict | None) -> str:
    """Render ``name{k=v,...}`` for labeled instruments, plain otherwise."""
    items = _normalize_labels(labels)
    if not items:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(_normalize_labels(labels))
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down; reads report the last write."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(_normalize_labels(labels))
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Keep the high-water mark (peak RSS style updates)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed summary of a series of observations.

    Buckets are cumulative upper bounds in the Prometheus sense: an
    observation lands in every bucket whose bound is >= the value, and
    ``count`` doubles as the implicit ``+Inf`` bucket.  Bounds are fixed
    at creation (first caller wins for a family); the streaming
    count/sum/min/max summary is kept alongside.
    """

    __slots__ = (
        "name", "labels", "buckets", "bucket_counts",
        "count", "total", "minimum", "maximum", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.labels = dict(_normalize_labels(labels))
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break  # cumulative counts are derived at read time

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf excluded."""
        with self._lock:
            counts = list(self.bucket_counts)
        running = 0
        out = []
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        return out

    def summary(self) -> dict:
        base = {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0}
        if self.count:
            base = {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.mean,
            }
        base["buckets"] = {
            f"{bound:g}": cumulative
            for bound, cumulative in self.cumulative_buckets()
        }
        return base


class MetricsRegistry:
    """Thread-safe namespace of instruments, created on first use.

    A family name is bound to one instrument kind for the registry's
    lifetime; asking for the same name as a different kind raises, even
    across different label sets.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    def _get(self, name: str, kind: type, labels: dict | None = None, **kwargs):
        key = (name, _normalize_labels(labels))
        with self._lock:
            bound = self._kinds.get(name)
            if bound is not None and bound is not kind:
                raise TypeError(
                    f"metric {name!r} is a {bound.__name__}, not a {kind.__name__}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = kind(name, labels, **kwargs)
                self._instruments[key] = instrument
                self._kinds[name] = kind
            return instrument

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return self._get(name, Histogram, labels, buckets=buckets)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """A stable-ordered snapshot of every live instrument."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _, instrument in items]

    def snapshot(self) -> dict:
        """JSON-ready dump: {counters: {...}, gauges: {...}, histograms: {...}}.

        Labeled instruments appear under ``name{k=v,...}`` keys; unlabeled
        ones keep their plain names (the historical format).
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in self.instruments():
            key = labeled_name(instrument.name, instrument.labels)
            if isinstance(instrument, Counter):
                out["counters"][key] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][key] = instrument.value
            else:
                out["histograms"][key] = instrument.summary()
        return out

    def export(self) -> list[dict]:
        """A JSON-safe, mergeable dump of every instrument's state."""
        out: list[dict] = []
        for instrument in self.instruments():
            record: dict = {"name": instrument.name, "labels": instrument.labels}
            if isinstance(instrument, Counter):
                record["kind"] = "counter"
                record["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                record["kind"] = "gauge"
                record["value"] = instrument.value
            else:
                record["kind"] = "histogram"
                with instrument._lock:
                    record["buckets"] = list(instrument.buckets)
                    record["bucket_counts"] = list(instrument.bucket_counts)
                    record["count"] = instrument.count
                    record["sum"] = instrument.total
                    record["min"] = instrument.minimum
                    record["max"] = instrument.maximum
            out.append(record)
        return out

    def merge(self, exported: list[dict]) -> None:
        """Fold another registry's :meth:`export` into this one.

        Counters and histograms add; gauges keep the high-water mark
        (the only order-independent combination of last-write values).
        Histogram bucket counts add element-wise when bucket bounds
        agree; on a bounds mismatch only count/sum/min/max merge.
        """
        for record in exported:
            name, labels, kind = record["name"], record["labels"], record["kind"]
            if kind == "counter":
                self.counter(name, labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(name, labels).max(record["value"])
            elif kind == "histogram":
                if not record["count"]:
                    continue
                histogram = self.histogram(
                    name, labels, buckets=tuple(record["buckets"])
                )
                with histogram._lock:
                    histogram.count += record["count"]
                    histogram.total += record["sum"]
                    histogram.minimum = min(histogram.minimum, record["min"])
                    histogram.maximum = max(histogram.maximum, record["max"])
                    if list(histogram.buckets) == list(record["buckets"]):
                        for index, extra in enumerate(record["bucket_counts"]):
                            histogram.bucket_counts[index] += extra
            else:  # pragma: no cover - future-proofing
                raise ValueError(f"unknown instrument kind {kind!r}")

    def record_peak_rss(self) -> float | None:
        """Sample the process's peak RSS into ``process.peak_rss_bytes``.

        Uses :mod:`resource` (POSIX); returns None where unavailable.
        Linux reports ``ru_maxrss`` in KiB, macOS in bytes — normalized
        here to bytes.
        """
        try:
            import resource
            import sys
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return None
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform != "darwin":
            peak *= 1024
        self.gauge("process.peak_rss_bytes").max(peak)
        return float(peak)
