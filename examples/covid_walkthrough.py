"""Walkthrough of the paper's running example (Figures 2 and 3).

Reconstructs, step by step, the COVID example of Section 3:

1. the comparison query "sum of cases by continent, April vs May" and its
   tabular result (Figure 2);
2. the hypothesis query postulating the mean-greater insight and its
   evaluation (Figure 3);
3. the permutation test of the insight on the raw data, with the
   Benjamini-Hochberg-corrected significance;
4. the insight's credibility across all hypothesis queries postulating it.

Run:  python examples/covid_walkthrough.py
"""

from __future__ import annotations

from repro.datasets import covid_table
from repro.insights import (
    MEAN_GREATER,
    CandidateInsight,
    SignificanceConfig,
    run_significance_tests,
)
from repro.queries import (
    ComparisonQuery,
    bind_table,
    comparison_sql,
    evaluate_comparison,
    hypothesis_sql,
)
from repro.sqlengine import Catalog, execute_sql


def main() -> None:
    covid = covid_table(1200)
    catalog = Catalog({"covid": covid})

    # -- Figure 2: the comparison query --------------------------------------
    query = ComparisonQuery(
        group_by="continent",
        selection_attribute="month",
        val="5",
        val_other="4",
        measure="cases",
        agg="sum",
    )
    sql = bind_table(comparison_sql(query), "covid") + ";"
    print("=== Figure 2: comparison query ===")
    print(sql)
    result = execute_sql(sql, catalog)
    print()
    print(result.pretty())

    # -- Figure 3: the hypothesis query ----------------------------------------
    hyp_sql = bind_table(hypothesis_sql(query, MEAN_GREATER), "covid") + ";"
    print("\n=== Figure 3: hypothesis query ===")
    print(hyp_sql)
    hyp_result = execute_sql(hyp_sql, catalog)
    supported = hyp_result.n_rows == 1
    print(f"\nresult rows: {hyp_result.n_rows} -> the comparison "
          f"{'SUPPORTS' if supported else 'does not support'} the insight")

    # Same check through the library's fast path:
    fast = evaluate_comparison(covid, query)
    print(f"fast path agrees: supports mean-greater = {fast.supports(MEAN_GREATER)}")

    # -- Significance: permutation test on the raw data -------------------------
    print("\n=== Insight significance (permutation test, BH-corrected) ===")
    candidate = CandidateInsight("cases", "month", "5", "4", "M")
    tested = run_significance_tests(covid, [candidate], SignificanceConfig(n_permutations=500))
    insight = tested[0]
    print(f"insight: mean(cases | month=5) > mean(cases | month=4)")
    print(f"observed statistic (mean difference on raw rows): {insight.statistic:.2f}")
    print(f"raw p-value: {insight.p_value:.4f}   adjusted: {insight.p_adjusted:.4f}")
    print(f"sig(i) = {insight.significance:.4f}  "
          f"-> significant at 0.95: {insight.is_significant()}")


if __name__ == "__main__":
    main()
