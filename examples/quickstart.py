"""Quickstart: point the generator at a CSV file, get a comparison notebook.

This is the paper's opening scenario — "a data enthusiast with some basic
knowledge of SQL, having to explore an unknown open data set in CSV
format."  The script:

1. writes a small demo CSV (so the example is self-contained),
2. loads it with automatic categorical/measure inference,
3. generates a 6-query comparison notebook with the default pipeline,
4. writes both a Jupyter ``.ipynb`` and a plain ``.sql`` script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.datasets import covid_table
from repro.notebook import to_sql_script
from repro.relational import write_csv


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    csv_path = workdir / "covid.csv"

    # 1. A demo CSV — in real use this is the open dataset you downloaded.
    write_csv(covid_table(800), csv_path)
    print(f"demo dataset written to {csv_path}")

    # 2-3. One Session owns the loaded table, its aggregate cache, the
    #    execution backend, and the trace; generate() runs the pipeline
    #    (statistical tests -> hypothesis queries -> TAP) under the
    #    resilient controller.  Set workers=N for the sharded process
    #    pool — results are identical at any worker count.
    config = repro.ReproConfig(budget=6)
    with repro.Session(csv_path, config=config) as session:
        print(f"loaded {session.table.n_rows} rows, schema: {session.table.schema}")
        run = session.generate(progress=print)
        print(f"\nnotebook of {len(run.selected)} comparison queries "
              f"(total interest {run.solution.interest:.3f}, "
              f"path distance {run.solution.distance:.2f} <= eps_d {run.epsilon_distance:.2f})")
        for rank, generated in enumerate(run.selected, start=1):
            print(f"  {rank}. {generated.query.describe()}  "
                  f"[interest {generated.interest:.3f}, {len(generated.supported)} insight(s)]")

        # 4. Render.
        ipynb_path = workdir / "covid_comparisons.ipynb"
        sql_path = workdir / "covid_comparisons.sql"
        notebook = session.render(run, title="COVID-19 comparisons")
        session.write_notebook(run, ipynb_path, title="COVID-19 comparisons")
        sql_path.write_text(to_sql_script(notebook), encoding="utf-8")
    print(f"\nwrote {ipynb_path}")
    print(f"wrote {sql_path}")
    print("\nfirst SQL cell:\n")
    print(next(c.sql for c in notebook.cells if hasattr(c, "sql")))


if __name__ == "__main__":
    main()
