"""Extending the framework with a new insight type (the paper's Section 7).

The conclusion lists the three ingredients for a new insight type:
(i) a SQL hypothesis predicate, (ii) a statistical test, (iii) the
interestingness plumbing.  This example:

1. uses the built-in extension type ``MedianGreater`` (code "D") alongside
   the paper's M and V types;
2. defines a brand-new ``RangeGreater`` type (max - min spread) from
   scratch to show the full recipe;
3. runs the generator with all four types enabled.

Run:  python examples/custom_insight_type.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.datasets import covid_table
from repro.insights import InsightType, register_insight_type
from repro.stats import SharedPermutations, TestResult, welch_mean_greater


class RangeGreater(InsightType):
    """Insight type ``R``: range(val) > range(val') where range = max - min."""

    code = "R"
    label = "range greater"
    null_hypothesis = "range(X) = range(Y)"
    statistic_name = "|range_X - range_Y|"

    def observed_statistic(self, x: np.ndarray, y: np.ndarray) -> float:
        x, y = x[~np.isnan(x)], y[~np.isnan(y)]
        if x.size == 0 or y.size == 0:
            return float("nan")
        return float((x.max() - x.min()) - (y.max() - y.min()))

    def test(self, batch: SharedPermutations, x: np.ndarray, y: np.ndarray) -> TestResult:
        x, y = x[~np.isnan(x)], y[~np.isnan(y)]
        observed = self.observed_statistic(x, y)
        pooled = np.concatenate([x, y])
        # Only the X side is stored on the batch; the (order-insensitive)
        # range statistic can take the Y side from its sorted complement.
        perm_x = pooled[batch.x_indices]
        perm_y = pooled[batch.complement_indices()]
        diffs = (perm_x.max(axis=1) - perm_x.min(axis=1)) - (
            perm_y.max(axis=1) - perm_y.min(axis=1)
        )
        extreme = int(np.count_nonzero(diffs >= observed - 1e-12))
        return TestResult(observed, (1.0 + extreme) / (1.0 + diffs.size))

    def parametric_test(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        return welch_mean_greater(x, y)  # pragmatic surrogate

    def supports(self, x_series: np.ndarray, y_series: np.ndarray) -> bool:
        x = x_series[~np.isnan(x_series)]
        y = y_series[~np.isnan(y_series)]
        if x.size == 0 or y.size == 0:
            return False
        return bool((x.max() - x.min()) > (y.max() - y.min()))

    def hypothesis_predicate_sql(self, x_column: str, y_column: str) -> str:
        return (
            f"max({x_column}) - min({x_column}) > max({y_column}) - min({y_column})"
        )


def main() -> None:
    register_insight_type(RangeGreater(), replace=True)

    covid = covid_table(800)
    config = repro.ReproConfig(budget=6).with_generation(
        insight_types=("M", "V", "D", "R")
    )
    with repro.Session(covid, config=config) as session:
        run = session.generate(progress=print)

    print(f"\nnotebook with {len(run.selected)} queries; insight types present:")
    codes = sorted(
        {e.insight.candidate.type_code for g in run.selected for e in g.supported}
    )
    print(f"  {codes}")
    for generated in run.selected:
        labels = {e.insight.candidate.type_code for e in generated.supported}
        print(f"  {generated.query.describe()}  types={sorted(labels)}")


if __name__ == "__main__":
    main()
