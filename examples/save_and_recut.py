"""Persist an expensive generation run, then re-cut notebooks cheaply.

Generating the query set Q (statistical tests + hypothesis evaluation) is
the expensive phase; picking a sequence (TAP) and rendering are cheap.
This example:

1. runs the full pipeline once on the ENEDIS-like dataset and saves the
   run to JSON,
2. reloads it and re-cuts three different notebooks — shorter, longer,
   and tighter ε_d — without re-running any statistics,
3. shows the CLI equivalent.

Run:  python examples/save_and_recut.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro
from repro.datasets import enedis_table
from repro.persistence import load_outcome, resolve_outcome, save_run

def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-recut-"))
    table = enedis_table(0.2)

    start = time.perf_counter()
    with repro.Session(table, config=repro.ReproConfig(budget=10)) as session:
        run = session.generate()
    generation_seconds = time.perf_counter() - start
    path = workdir / "enedis_run.json"
    save_run(run, path)
    print(f"generated |Q| = {run.outcome.n_queries} in {generation_seconds:.2f}s; "
          f"saved to {path}")

    outcome = load_outcome(path)
    for budget, epsilon in ((5, None), (15, None), (10, 8.0)):
        start = time.perf_counter()
        recut = resolve_outcome(outcome, budget=budget, epsilon_distance=epsilon)
        recut_seconds = time.perf_counter() - start
        eps = f"{recut.epsilon_distance:.1f}"
        print(f"  recut eps_t={budget:<3} eps_d={eps:<6} -> {len(recut.selected)} queries, "
              f"z={recut.solution.interest:.3f}, d={recut.solution.distance:.2f} "
              f"({recut_seconds * 1000:.1f} ms)")

    print("\nCLI equivalent:")
    print("  repro generate data.csv --budget 10 --save-run run.json --out nb.ipynb")
    print("  repro recut run.json --budget 5 --csv data.csv --out shorter.ipynb")


if __name__ == "__main__":
    main()
