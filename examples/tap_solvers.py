"""TAP solver playground: exact vs heuristic vs baseline, plus a Pareto sweep.

On a random instance with the production weighted-Hamming metric, this
example shows:

* the exact branch-and-bound solution (interest-optimal under ε_d),
* Algorithm 3's approximation and its deviation/recall,
* the naive top-k baseline,
* an ε-constraint sweep tracing the interest/distance Pareto front.

Run:  python examples/tap_solvers.py
"""

from __future__ import annotations

from repro.evaluation import objective_deviation_percent, render_table, solution_recall
from repro.tap import (
    ExactConfig,
    HeuristicConfig,
    pareto_front,
    random_hamming_instance,
    solve_baseline,
    solve_exact,
    solve_heuristic,
    sweep_epsilon,
)


def main() -> None:
    instance = random_hamming_instance(n=80, seed=7)
    budget = 8.0
    epsilon_d = 24.0

    exact = solve_exact(instance, ExactConfig(budget, epsilon_d, timeout_seconds=30.0))
    heuristic = solve_heuristic(instance, HeuristicConfig(budget, epsilon_d))
    baseline = solve_baseline(instance, budget)

    rows = [
        ("exact B&B", f"{exact.solution.interest:.3f}", f"{exact.solution.distance:.2f}",
         exact.solution.size, "yes" if exact.solution.optimal else "timeout"),
        ("Algorithm 3", f"{heuristic.interest:.3f}", f"{heuristic.distance:.2f}",
         heuristic.size, "-"),
        ("top-k baseline", f"{baseline.interest:.3f}", f"{baseline.distance:.2f}",
         baseline.size, "-"),
    ]
    print(render_table(["solver", "interest z", "distance", "M", "optimal"], rows,
                       title=f"80 queries, eps_t={budget:.0f}, eps_d={epsilon_d:.0f}"))

    print(f"\nheuristic deviation: "
          f"{objective_deviation_percent(exact.solution, heuristic):.2f}%")
    print(f"heuristic recall vs optimal: {solution_recall(exact.solution, heuristic):.2f}")
    print(f"baseline recall vs optimal:  {solution_recall(exact.solution, baseline):.2f}")
    print(f"baseline distance feasible under eps_d? "
          f"{'yes' if baseline.distance <= epsilon_d else 'NO - it ignores eps_d'}")

    print("\n=== eps-constraint Pareto sweep (heuristic) ===")
    points = sweep_epsilon(instance, budget, [6, 10, 14, 18, 22, 26, 30])
    front = pareto_front(points)
    rows = [
        (f"{p.epsilon_distance:.0f}", f"{p.interest:.3f}", f"{p.distance:.2f}",
         "front" if p in front else "")
        for p in points
    ]
    print(render_table(["eps_d", "interest z", "distance", ""], rows))


if __name__ == "__main__":
    main()
