"""Compare the paper's generator implementations on the ENEDIS-like dataset.

Runs the five Table 3 implementations (plus the two Table 7 interestingness
variants) on the synthetic ENEDIS workload, printing for each:

* wall-clock time and its phase breakdown,
* how many insights were tested / found significant,
* the size of the generated query set Q,
* the selected notebook's interest and path distance.

Finally the wsc-approx notebook is written to ``/tmp`` as ``.ipynb``.

Run:  python examples/enedis_generators.py  [--scale 0.3]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.datasets import enedis_table
from repro.evaluation import render_table, run_preset
from repro.generation import preset, preset_names
from repro.notebook import write_ipynb


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="dataset scale factor (1.0 = ~6000 rows)")
    parser.add_argument("--budget", type=int, default=10, help="notebook length (eps_t)")
    args = parser.parse_args()

    table = enedis_table(scale=args.scale)
    print(f"ENEDIS-like dataset: {table.n_rows} rows, "
          f"{len(table.schema.categorical_names)} categorical attributes, "
          f"{len(table.schema.measure_names)} measures\n")

    rows = []
    best_run = None
    for name in preset_names():
        if name == "naive-exact":
            # The exact solver needs a small Q; keep it but cap its time.
            generator = preset(name, exact_timeout=20.0)
        else:
            generator = preset(name, sample_rate=0.2)
        outcome = run_preset(generator, table, name, budget=args.budget)
        timings = outcome.breakdown
        rows.append(
            (
                name,
                f"{outcome.wall_seconds:.2f}s",
                f"{timings['statistical_tests']:.2f}s",
                f"{timings['hypothesis_evaluation']:.2f}s",
                f"{timings['tap_solving']:.3f}s",
                outcome.insights_tested,
                outcome.insights_significant,
                outcome.n_queries,
                f"{outcome.run.solution.interest:.2f}",
            )
        )
        if name == "wsc-approx":
            best_run = outcome.run

    print(
        render_table(
            ["generator", "wall", "tests", "hyp.eval", "tap", "tested", "signif", "|Q|", "z"],
            rows,
            title="Generator implementations on ENEDIS-like data",
        )
    )

    if best_run is not None and best_run.selected:
        out = Path(tempfile.mkdtemp(prefix="repro-enedis-")) / "enedis_notebook.ipynb"
        notebook = best_run.to_notebook(table, table_name="enedis", title="ENEDIS comparisons")
        write_ipynb(notebook, out)
        print(f"\nwsc-approx notebook written to {out}")


if __name__ == "__main__":
    main()
