"""Run every table/figure experiment and print the full reports.

Usage::

    python benchmarks/run_all.py           # full (paper-scale-reduced) runs
    python benchmarks/run_all.py --quick   # CI-sized runs

The per-experiment modules can also be run individually, e.g.
``python benchmarks/test_table4_exact_tap.py``.
"""

from __future__ import annotations

import importlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

EXPERIMENTS = (
    "test_table2_datasets",
    "test_fig4_conciseness",
    "test_fig5_query_times",
    "test_table4_exact_tap",
    "test_table5_deviation",
    "test_table6_recall",
    "test_fig6_sample_size",
    "test_fig7_budget",
    "test_fig8_threads",
    "test_fig9_flights",
    "test_fig10_user_study",
    "test_ablation_permutations",
    "test_ablation_bh",
    "test_ablation_transitivity",
    "test_ablation_setcover",
    "test_ablation_insertion",
)


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    total_start = time.perf_counter()
    for name in EXPERIMENTS:
        module = importlib.import_module(name)
        start = time.perf_counter()
        module.main(quick=quick)
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]", flush=True)
    print(f"\nAll experiments finished in {time.perf_counter() - total_start:.1f}s")


if __name__ == "__main__":
    main()
