"""Figure 4 — the conciseness function surface.

Paper: a 3-D illustration of ``conciseness(θ, γ)``: a ridge of ideal
group counts growing with the number of aggregated tuples, an undefined
zone where γ > θ, and decay away from the ridge.  We print the surface
as an ASCII grid and assert its qualitative shape.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _harness import cli_main, print_report, run_once

from repro.queries import DEFAULT_ALPHA, DEFAULT_DELTA, conciseness

THETAS = (50, 100, 250, 500, 1000, 2500, 5000, 10000)
GAMMAS = (2, 5, 10, 25, 50, 100, 250, 500, 1000)


def build_surface() -> list[list[float]]:
    return [[conciseness(theta, gamma) for gamma in GAMMAS] for theta in THETAS]


def render_surface(surface) -> str:
    lines = ["theta \\ gamma  " + "".join(f"{g:>7}" for g in GAMMAS)]
    for theta, row in zip(THETAS, surface):
        cells = []
        for gamma, value in zip(GAMMAS, row):
            cells.append("      -" if gamma > theta else f"{value:7.3f}")
        lines.append(f"{theta:>13}  " + "".join(cells))
    lines.append(f"\n(alpha={DEFAULT_ALPHA}, delta={DEFAULT_DELTA}; '-' = undefined zone gamma > theta)")
    lines.append("paper: non-monotonic ridge at gamma ~ alpha*theta, undefined above diagonal")
    return "\n".join(lines)


def main(quick: bool = False) -> None:
    print_report("Figure 4 — conciseness(theta, gamma) surface", render_surface(build_surface()))


def test_fig4_conciseness(benchmark, capsys):
    surface = run_once(benchmark, build_surface)
    with capsys.disabled():
        print_report("Figure 4 — conciseness surface", render_surface(surface))
    arr = np.array(surface)
    # Ridge: for theta = 2500 the maximum over gamma is interior (non-monotone).
    row = arr[THETAS.index(2500)]
    peak = int(np.argmax(row))
    assert 0 < peak < len(GAMMAS) - 1
    # Ideal group count grows with theta: the argmax column is non-decreasing.
    peaks = [int(np.argmax(arr[i])) for i in range(len(THETAS))]
    assert peaks == sorted(peaks)
    # Undefined zone is exactly gamma > theta.
    assert conciseness(10, 20) == 0.0


if __name__ == "__main__":
    cli_main(main)
