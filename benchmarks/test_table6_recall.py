"""Table 6 — recall of the heuristic vs the top-k baseline.

Paper: Algorithm 3 finds ~28-30% of the optimal solution's queries at
every size, steadily 2.5-3x the interest-only baseline's ~9-12%.  Shape
to reproduce: heuristic recall roughly flat in size and clearly above the
baseline's.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once
from tap_experiments import (
    SEEDS_FULL,
    SEEDS_QUICK,
    SIZES_FULL,
    SIZES_QUICK,
    completed,
    run_protocol,
    stat,
)

from repro.evaluation import render_table

PAPER_ROWS = """paper: heuristic recall 0.27-0.30 at all sizes; baseline 0.09-0.12
(heuristic steadily 2.5-3x better)"""


def build_table(by_size) -> str:
    rows = []
    for n, runs in by_size.items():
        done = completed(runs)
        if not done:
            rows.append((n, "(all timed out)", ""))
            continue
        h = stat([r.heuristic_recall for r in done])
        b = stat([r.baseline_recall for r in done])
        rows.append((n, f"{h.mean:.3f} ±{h.std:.3f}", f"{b.mean:.3f} ±{b.std:.3f}"))
    body = render_table(["#Queries", "Recall (Algorithm 3)", "Recall (Baseline)"], rows)
    return body + "\n\n" + PAPER_ROWS


def main(quick: bool = False) -> None:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    seeds = SEEDS_QUICK if quick else SEEDS_FULL
    by_size = run_protocol(sizes, seeds)
    print_report("Table 6 — recall vs optimal: Algorithm 3 and baseline", build_table(by_size))


def test_table6_recall(benchmark, capsys):
    by_size = run_once(benchmark, run_protocol, SIZES_QUICK, SEEDS_QUICK, 2.0)
    with capsys.disabled():
        print_report("Table 6 (quick) — recall", build_table(by_size))
    # Averaged over everything completed, the heuristic should beat the
    # distance-blind baseline on recall (the paper's headline conclusion).
    # The quick run is a noisy smoke test (few seeds, bimodal heuristic
    # recall), so allow slack; the full protocol is where this is measured.
    all_done = [r for runs in by_size.values() for r in completed(runs)]
    if len(all_done) >= 5:
        mean_h = sum(r.heuristic_recall for r in all_done) / len(all_done)
        mean_b = sum(r.baseline_recall for r in all_done) / len(all_done)
        assert mean_h >= mean_b - 0.15


if __name__ == "__main__":
    cli_main(main)
