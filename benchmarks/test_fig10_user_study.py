"""Figure 10 + Table 7 — the (simulated) user study.

Paper: 9 volunteers rated six 10-query ENEDIS notebooks (Table 7 configs)
on informativity / comprehensibility / expertise / human-equivalence.
Findings to reproduce with the simulated raters (see
``repro.evaluation.user_study`` for the substitution rationale):

* WSC-rand-approx and WSC-approx-sig score well; the difference between
  them is not significant (t-test);
* Naive-exact does not dominate — exact TAP resolution is not needed for
  user-perceived quality (no significant difference vs WSC-approx);
* human-equivalence scores are the weakest overall (the tight ε_d makes
  sequences repetitive).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import CRITERIA, render_table, simulate_user_study
from repro.generation import preset

GENERATORS = (
    "naive-exact",
    "wsc-approx",
    "wsc-approx-sig",
    "wsc-approx-sig-cred",
    "wsc-unb-approx",
    "wsc-rand-approx",
)
PAPER_NOTE = """paper: WSC-rand-approx & WSC-approx-sig score best (difference not
significant); Naive-exact dominated on all criteria (no significant
difference vs WSC-approx either); human-equivalence lowest overall"""


def run_experiment(scale: float, budget: int, n_raters: int = 9, seed: int = 1598):
    table = enedis_table(scale)
    notebooks = {}
    for name in GENERATORS:
        generator = preset(name, sample_rate=0.1, exact_timeout=15.0)
        run = generator.generate(table, budget=budget)
        if run.selected:
            notebooks[name] = run.selected
    study = simulate_user_study(notebooks, n_raters=n_raters, seed=seed)
    return study


def build_report(study) -> str:
    rows = [
        (name, *(f"{v:.2f}" for v in means))
        for name, *means in study.mean_table()
    ]
    body = render_table(["generator"] + list(CRITERIA), rows, title="Mean ratings (1-7)")
    tests = []
    pairs = [
        ("wsc-rand-approx", "wsc-approx-sig"),
        ("naive-exact", "wsc-approx"),
        ("wsc-rand-approx", "naive-exact"),
        ("wsc-approx-sig", "wsc-approx-sig-cred"),
    ]
    for a, b in pairs:
        if a in study.ratings and b in study.ratings:
            for criterion in CRITERIA:
                p = study.t_test(a, b, criterion)
                verdict = "significant" if p < 0.05 else "not significant"
                tests.append((f"{a} vs {b}", criterion, f"{p:.3f}", verdict))
    t_table = render_table(["pair", "criterion", "p-value", "verdict"], tests,
                           title="Welch t-tests")
    return body + "\n\n" + t_table + "\n\n" + PAPER_NOTE


def main(quick: bool = False) -> None:
    study = run_experiment(0.1 if quick else 0.3, 6 if quick else 10)
    print_report("Figure 10 / Table 7 — simulated user study", build_report(study))


def test_fig10_user_study(benchmark, capsys):
    study = run_once(benchmark, run_experiment, 0.1, 6)
    with capsys.disabled():
        print_report("Figure 10 (quick) — simulated user study", build_report(study))
    # Ratings live on the 1-7 Likert scale for every generator.
    for matrix in study.ratings.values():
        assert matrix.min() >= 1.0 and matrix.max() <= 7.0
    # The paper's key negative result: sampling does not significantly hurt
    # perceived quality (rand-approx vs the full-data setcover variant).
    if {"wsc-rand-approx", "wsc-approx"} <= set(study.ratings):
        assert not study.significant_difference(
            "wsc-rand-approx", "wsc-approx", "comprehensibility", alpha=0.01
        )


if __name__ == "__main__":
    cli_main(main)
