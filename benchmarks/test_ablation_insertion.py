"""Ablation — best-insertion vs append-only in Algorithm 3 (§5.3).

DESIGN.md decision 4: Algorithm 3 inserts each accepted query at the
position minimizing the total distance.  The cheap alternative is to only
append at the end.  Expected shape: best-insertion packs more interest
into the same ε_d (it wastes less distance budget), at identical
asymptotic cost.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _harness import cli_main, print_report, run_once

from repro.evaluation import render_table
from repro.tap import HeuristicConfig, random_clustered_instance, random_hamming_instance, solve_heuristic


def run_experiment(n_seeds: int):
    rows = []
    wins = 0
    total = 0
    for family, maker, budget, eps in (
        ("hamming", random_hamming_instance, 6, 20.0),
        ("clustered", random_clustered_instance, 6, 0.3),
    ):
        for n in (100, 400):
            best_z, append_z = [], []
            for seed in range(n_seeds):
                instance = maker(n, seed=seed)
                best = solve_heuristic(instance, HeuristicConfig(budget, eps, best_insertion=True))
                append = solve_heuristic(
                    instance, HeuristicConfig(budget, eps, best_insertion=False)
                )
                best_z.append(best.interest)
                append_z.append(append.interest)
                total += 1
                if best.interest >= append.interest - 1e-12:
                    wins += 1
            gain = (np.mean(best_z) - np.mean(append_z)) / max(np.mean(append_z), 1e-9) * 100
            rows.append(
                (family, n, f"{np.mean(best_z):.3f}", f"{np.mean(append_z):.3f}", f"{gain:+.1f}%")
            )
    return rows, wins, total


def build_report(rows, wins, total) -> str:
    body = render_table(
        ["instances", "n", "z best-insertion", "z append-only", "gain"], rows
    )
    return body + f"\n\nbest-insertion at least as good on {wins}/{total} instances"


def main(quick: bool = False) -> None:
    rows, wins, total = run_experiment(5 if quick else 30)
    print_report("Ablation — best-insertion vs append-only (Algorithm 3)",
                 build_report(rows, wins, total))


def test_ablation_insertion(benchmark, capsys):
    rows, wins, total = run_once(benchmark, run_experiment, 8)
    with capsys.disabled():
        print_report("Ablation (quick) — insertion strategy", build_report(rows, wins, total))
    # Best-insertion dominates append-only on the vast majority of instances.
    assert wins >= 0.8 * total


if __name__ == "__main__":
    cli_main(main)
