"""Table 2 — description of the evaluation datasets.

Paper columns: tuples, bytes, #categorical attributes, adom min-max,
#measures, #comparison queries.  Our synthetic stand-ins are scaled in
tuples (~1/20) but must preserve the *orderings* the experiments rely on:
Vaccine ≪ ENEDIS ≪ Flights in tuples, while ENEDIS has the largest
comparison-query count (its big active domain dominates C(adom, 2)).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import (
    describe,
    enedis_spec,
    flights_spec,
    generate,
    vaccine_spec,
)
from repro.evaluation import render_table
from repro.insights import count_comparison_queries, table_adom_sizes

PAPER_ROWS = """paper: Vaccine 5045t/656K/6cat/2-107/1m/700q;
ENEDIS 114527t/21M/7cat/3-1295/2m/1571832q; Flights 5819079t/808M/5cat/7-377/3m/350460q
(#Comp. queries: potential comparison queries per Lemma 3.2 with f=2 aggregates)"""


def build_rows(scale: float):
    rows = []
    for spec_fn in (vaccine_spec, enedis_spec, flights_spec):
        spec = spec_fn(scale)
        table = generate(spec)
        info = describe(spec, table)
        adoms = list(table_adom_sizes(table).values())
        n_queries = count_comparison_queries(adoms, len(spec.measures), 2)
        rows.append(
            (
                info["name"],
                info["tuples"],
                f"{info['bytes'] / 1024:.0f}K",
                info["n_categorical"],
                f"{info['adom_min']}-{info['adom_max']}",
                info["n_measures"],
                n_queries,
            )
        )
    return rows


def build_table(scale: float) -> str:
    body = render_table(
        ["Name", "Tuples", "Bytes", "#Categ.", "Adom (min-max)", "#Meas.", "#Comp. queries"],
        build_rows(scale),
    )
    return body + "\n\n" + PAPER_ROWS


def main(quick: bool = False) -> None:
    print_report("Table 2 — dataset descriptions", build_table(0.3 if quick else 1.0))


def test_table2_datasets(benchmark, capsys):
    rows = run_once(benchmark, build_rows, 0.3)
    with capsys.disabled():
        print_report("Table 2 (quick) — dataset descriptions", build_table(0.3))
    by_name = {r[0]: r for r in rows}
    # Orderings the paper's experiments rely on.
    assert by_name["vaccine"][1] < by_name["enedis"][1] < by_name["flights"][1]
    assert by_name["enedis"][6] > by_name["flights"][6] > by_name["vaccine"][6]


if __name__ == "__main__":
    cli_main(main)
