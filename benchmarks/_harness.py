"""Shared helpers for the benchmark/experiment modules.

Every module in this directory reproduces one table or figure of the paper
(see DESIGN.md's per-experiment index).  Each exposes:

* ``main(quick=False)`` — run the experiment and print the paper's
  rows/series (``quick=True`` shrinks it for CI); invoked by
  ``python benchmarks/<module>.py`` and by ``run_all.py``;
* one or more ``test_*`` functions using the pytest-benchmark fixture, so
  ``pytest benchmarks/ --benchmark-only`` times the experiment kernel and
  prints the quick version of the table.
"""

from __future__ import annotations

import sys
from typing import Callable


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Benchmark ``func`` with exactly one round (experiments are slow)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_report(title: str, body: str) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n", flush=True)


def cli_main(main: Callable[[bool], None]) -> None:
    """Standard ``__main__`` entry: ``--quick`` shrinks the experiment."""
    quick = "--quick" in sys.argv[1:]
    main(quick=quick)
