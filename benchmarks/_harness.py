"""Shared helpers for the benchmark/experiment modules.

Every module in this directory reproduces one table or figure of the paper
(see DESIGN.md's per-experiment index).  Each exposes:

* ``main(quick=False)`` — run the experiment and print the paper's
  rows/series (``quick=True`` shrinks it for CI); invoked by
  ``python benchmarks/<module>.py`` and by ``run_all.py``;
* one or more ``test_*`` functions using the pytest-benchmark fixture, so
  ``pytest benchmarks/ --benchmark-only`` times the experiment kernel and
  prints the quick version of the table.

Every benchmark run records into the ambient :mod:`repro.obs` tracer and
metrics registry; :func:`cli_main` accepts ``--metrics-out PATH`` (or the
``REPRO_METRICS_OUT`` environment variable) to dump the run's counters,
gauges, histograms, and per-span-name timing aggregates as JSON — the
machine-readable side of every experiment.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Callable

from repro import obs
from repro.backend import default_backend_name


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Benchmark ``func`` with exactly one round (experiments are slow)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_report(title: str, body: str) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n", flush=True)


def metrics_snapshot() -> dict:
    """The ambient observability state as one JSON-ready document.

    ``spans`` aggregates the tracer by span name (count + total seconds),
    so a benchmark's output carries the same stage accounting a trace
    file would, without the per-event bulk.
    """
    tracer = obs.current_tracer()
    obs.current_metrics().record_peak_rss()
    by_name: dict[str, dict] = {}
    for span in tracer.spans():
        if not span.closed:
            continue
        entry = by_name.setdefault(span.name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += span.duration
    return {
        "backend": default_backend_name(),
        "metrics": obs.current_metrics().snapshot(),
        "spans": dict(sorted(by_name.items())),
    }


def write_metrics_json(path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(metrics_snapshot(), indent=2), encoding="utf-8"
    )


def cli_main(main: Callable[[bool], None]) -> None:
    """Standard ``__main__`` entry: ``--quick`` shrinks the experiment.

    ``--metrics-out PATH`` (or ``REPRO_METRICS_OUT=PATH``) writes the
    run's observability snapshot as JSON after the experiment finishes.
    """
    argv = sys.argv[1:]
    quick = "--quick" in argv
    metrics_out = os.environ.get("REPRO_METRICS_OUT")
    if "--metrics-out" in argv:
        index = argv.index("--metrics-out")
        if index + 1 >= len(argv):
            print("error: --metrics-out requires a path", file=sys.stderr)
            raise SystemExit(2)
        metrics_out = argv[index + 1]
    obs.reset()
    main(quick=quick)
    if metrics_out:
        write_metrics_json(metrics_out)
        print(f"wrote {metrics_out}", flush=True)
