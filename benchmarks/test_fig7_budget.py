"""Figure 7 — runtime by budget ε_t and phase breakdown (ENEDIS).

Paper: all five Table 3 implementations are flat in ε_t (the TAP heuristic
cost is independent of the budget when |Q| ≫ ε_t); the sampling variants
are much faster than the non-sampling ones; the statistical tests dominate
the breakdown; TAP solving is negligible except for Naive-exact.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_table, run_preset
from repro.generation import preset

BUDGETS = (5, 10, 20, 40)
PRESETS = ("naive-exact", "naive-approx", "wsc-approx", "wsc-unb-approx", "wsc-rand-approx")
PAPER_NOTE = """paper: runtimes flat in eps_t; sampling variants fastest; statistical
tests dominate the breakdown; TAP solving negligible except Naive-exact
(whose exact resolution timed out and is excluded from its runtime)"""


def run_experiment(scale: float, budgets, sample_rate: float) -> dict:
    table = enedis_table(scale)
    results: dict[str, dict[int, object]] = {}
    for name in PRESETS:
        # Match the paper: Naive-exact's TAP resolution is capped (timeouts
        # are reported, not waited out for an hour).
        generator = preset(name, sample_rate=sample_rate, exact_timeout=10.0)
        results[name] = {}
        for budget in budgets:
            results[name][budget] = run_preset(generator, table, name, budget=budget)
    return results


def build_tables(results) -> str:
    budgets = sorted(next(iter(results.values())).keys())
    runtime_rows = []
    for name, by_budget in results.items():
        runtime_rows.append(
            [name] + [f"{by_budget[b].wall_seconds:.2f}" for b in budgets]
        )
    runtime = render_table(
        ["implementation"] + [f"eps_t={b}" for b in budgets], runtime_rows,
        title="Runtime (s) by budget",
    )
    breakdown_rows = []
    for name, by_budget in results.items():
        run = by_budget[budgets[0]]
        t = run.breakdown
        breakdown_rows.append(
            (
                name,
                f"{t['preprocessing'] + t['sampling']:.2f}",
                f"{t['statistical_tests']:.2f}",
                f"{t['hypothesis_evaluation']:.2f}",
                f"{t['tap_solving']:.3f}",
                run.n_queries,
            )
        )
    breakdown = render_table(
        ["implementation", "prep+sample", "stat tests", "hyp. eval", "TAP", "|Q|"],
        breakdown_rows,
        title=f"Breakdown (eps_t={budgets[0]})",
    )
    return runtime + "\n\n" + breakdown + "\n\n" + PAPER_NOTE


def main(quick: bool = False) -> None:
    results = run_experiment(0.1 if quick else 0.3, (5, 10) if quick else BUDGETS, 0.2)
    print_report("Figure 7 — runtime by budget and breakdown", build_tables(results))


def test_fig7_budget(benchmark, capsys):
    results = run_once(benchmark, run_experiment, 0.08, (5, 10), 0.25)
    with capsys.disabled():
        print_report("Figure 7 (quick) — runtime by budget", build_tables(results))
    # Shape: sampling variants faster than the full-data setcover variant.
    wsc = results["wsc-approx"][5].wall_seconds
    unb = results["wsc-unb-approx"][5].wall_seconds
    rand = results["wsc-rand-approx"][5].wall_seconds
    assert unb < wsc and rand < wsc
    # Shape: for the approximate solvers, runtime is flat in eps_t (within noise).
    for name in ("naive-approx", "wsc-approx"):
        times = [results[name][b].wall_seconds for b in (5, 10)]
        assert max(times) <= 3.0 * min(times) + 0.2
    # Statistical tests dominate hypothesis evaluation for the full-data runs.
    t = results["wsc-approx"][5].breakdown
    assert t["statistical_tests"] > t["hypothesis_evaluation"]


if __name__ == "__main__":
    cli_main(main)
