"""Figure 8 — impact of parallelising the generation of Q.

Paper (Java, 24 logical cores): large speedup from 1 to 8 threads, still
substantial to 16, diminishing beyond the core count.  Both of the
paper's parallel steps are exercised: (i) permutation testing (chunked
within attributes so one large-domain attribute cannot serialize the
phase) and (ii) in-memory support checking.

Our substrate differs in two ways, reported honestly rather than hidden:
the container has 2 cores (the paper's knee moves to ~2), and CPython's
GIL makes *thread* workers useless for the permutation loop — the
``processes`` backend is what recovers the paper's speedup shape.  The
sweep therefore covers both backends; the reproduction target is
"parallel workers reduce the statistical-test wall-clock until the core
count, threads-vs-processes being a Python artifact".
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_table
from repro.generation import GenerationConfig, generate_comparison_queries
from repro.parallel import ParallelConfig

PAPER_NOTE = """paper (24-core Xeon, Java threads): big speedup 1->8, gains to 16,
diminishing beyond; here the 'processes' backend shows the shape on 2
cores while 'threads' exposes the GIL (flat or worse) — see module docstring"""


def run_experiment(scale: float, sweep) -> list[tuple[str, int, float, float, float]]:
    table = enedis_table(scale)
    rows = []
    for backend, n in sweep:
        config = GenerationConfig(
            parallel=ParallelConfig(workers=n, backend=backend),
            evaluator="setcover",
        )
        start = time.perf_counter()
        outcome = generate_comparison_queries(table, config)
        wall = time.perf_counter() - start
        rows.append(
            (
                backend if n > 1 else "serial",
                n,
                outcome.timings.statistical_tests,
                outcome.timings.hypothesis_evaluation,
                wall,
            )
        )
    return rows


def build_table(rows) -> str:
    base = rows[0][4]
    table_rows = [
        (backend, n, f"{tests:.2f}", f"{hyp:.2f}", f"{wall:.2f}", f"{base / wall:.2f}x")
        for backend, n, tests, hyp, wall in rows
    ]
    body = render_table(
        ["backend", "workers", "stat tests (s)", "hyp. eval (s)", "total (s)", "speedup"],
        table_rows,
    )
    return body + "\n\n" + PAPER_NOTE


FULL_SWEEP = (
    ("threads", 1),
    ("processes", 2),
    ("processes", 4),
    ("processes", 8),
    ("threads", 2),
    ("threads", 4),
)


def main(quick: bool = False) -> None:
    sweep = (("threads", 1), ("processes", 2)) if quick else FULL_SWEEP
    rows = run_experiment(0.12 if quick else 0.5, sweep)
    print_report("Figure 8 — parallel generation of Q", build_table(rows))


def test_fig8_threads(benchmark, capsys):
    rows = run_once(
        benchmark, run_experiment, 0.2, (("threads", 1), ("processes", 2), ("threads", 2))
    )
    with capsys.disabled():
        print_report("Figure 8 (quick) — parallel workers", build_table(rows))
    by = {(r[0], r[1]): r for r in rows}
    serial_tests = by[("serial", 1)][2]
    process_tests = by[("processes", 2)][2]
    # At quick scale the pool spawn/pickle overhead is a large share of a
    # ~2 s phase, and a full benchmark session adds background load, so the
    # smoke check only rules out a catastrophic regression; the full run
    # (scale 0.5, quiet machine) is where the 1.3x speedup is measured.
    assert process_tests <= serial_tests * 1.8
    # Threads are allowed to be slower (GIL) but not catastrophically so.
    assert by[("threads", 2)][4] <= by[("serial", 1)][4] * 2.5


if __name__ == "__main__":
    cli_main(main)
