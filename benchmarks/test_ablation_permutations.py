"""Ablation — permutation-batch sharing and the test engine (§5.1.1).

DESIGN.md decision 1: the paper reuses the same permutations across all
measures of an attribute.  We measure three configurations of the
statistical-test phase:

* shared batches (paper default; also shared across equal-size pairs),
* fresh permutations per test,
* the parametric engine (Welch/F) as the non-resampling alternative.

Expected shape: sharing is faster than fresh at equal conclusions;
parametric is fastest but is exactly what the paper argues against.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_table
from repro.insights import SignificanceConfig, enumerate_candidates, run_significance_tests

CONFIGS = {
    "shared permutations": SignificanceConfig(share_across_pairs=True),
    "fresh permutations": SignificanceConfig(share_across_pairs=False),
    "parametric (Welch/F)": SignificanceConfig(engine="parametric"),
}


def run_experiment(scale: float):
    table = enedis_table(scale)
    candidates = list(enumerate_candidates(table))
    rows = []
    significant_sets = {}
    for name, config in CONFIGS.items():
        start = time.perf_counter()
        tested = run_significance_tests(table, candidates, config)
        wall = time.perf_counter() - start
        significant = {t.candidate.key for t in tested if t.is_significant()}
        significant_sets[name] = significant
        rows.append((name, len(candidates), f"{wall:.2f}", len(significant)))
    shared = significant_sets["shared permutations"]
    fresh = significant_sets["fresh permutations"]
    overlap = len(shared & fresh) / max(1, len(shared | fresh))
    return rows, overlap


def build_report(rows, overlap) -> str:
    body = render_table(["engine", "#tests", "runtime (s)", "#significant"], rows)
    return body + f"\n\nshared-vs-fresh significant-set Jaccard overlap: {overlap:.2%}"


def main(quick: bool = False) -> None:
    rows, overlap = run_experiment(0.1 if quick else 0.3)
    print_report("Ablation — permutation sharing and test engine", build_report(rows, overlap))


def test_ablation_permutations(benchmark, capsys):
    rows, overlap = run_once(benchmark, run_experiment, 0.08)
    with capsys.disabled():
        print_report("Ablation (quick) — permutation sharing", build_report(rows, overlap))
    by = {name: (float(wall), sig) for name, _, wall, sig in rows}
    # Sharing must not be slower than fresh permutations.
    assert by["shared permutations"][0] <= by["fresh permutations"][0] * 1.2
    # The two resampling variants reach near-identical conclusions.
    assert overlap > 0.7


if __name__ == "__main__":
    cli_main(main)
