"""Stats-kernel benchmark — batched mask-GEMM vs legacy per-test gather.

The batched kernel (``repro/stats/kernel.py``) replaces the per-test
fancy-indexed gather of the permutation hot path with one BLAS product per
shared batch: a ``(P, n)`` membership mask multiplied against the stacked
first and second moments of every pending measure.  This module times both
kernels on two workloads and records the results as gauges, so
``--metrics-out`` emits a machine-readable ``BENCH_stats.json``:

* **wide synthetic** — a balanced table with 12 measures, where every
  pair family of an attribute shares one permutation batch (the paper's
  §5.1.1 shared-batch regime); the batched kernel amortizes the mask and
  retires all measures in one GEMM, the acceptance bar is a >= 3x
  speedup;
* **Figure 5 workload (ENEDIS)** — the real evaluation dataset, end to
  end through the resilient pipeline, checking that the cross-stage
  aggregate cache records nonzero hits (rendering re-evaluates the pairs
  hypothesis evaluation already materialized) and that both kernels agree
  test-for-test.

A third workload sweeps the sharded process pool over the statistics
stage at ``workers`` in {1, 2, 4} (the PR 5 execution layer), asserting
bit-identical test results at every worker count and recording honest
wall-clock numbers next to ``cpu_count`` — on a single-core container the
pool cannot beat the serial run and the row says so rather than hiding it.

A fourth workload measures the data plane itself: the same sharded stats
stage on a large table under the ``heap`` plane (the table pickled into
every worker) vs the ``shm`` plane (a compact handle to one shared
segment).  Results are bit-identical; the recorded ``ipc_shrink`` ratio
is the whole point of the zero-copy plane and the quick test holds it at
>= 10x.

A fifth workload measures the multi-query optimizer: the same support
stage on a wide-schema synthetic under the sqlite pushdown backend, per-set
(``mqo=False``, one statement per group-by set) vs batched (``mqo=True``,
UNION-ALL grouping-set statements).  Results are identical; the recorded
``stmt_shrink`` ratio is the COMPARE-style statement collapse and the
quick test holds it at >= 5x.

A sixth workload measures incremental recompute on appended data: the
stats stage cold over a grown table vs incrementally from the prefix
run's memo (``repro/stats/delta.py``).  The appended block touches one
value per attribute, so most pair families are served verbatim from the
memo; results are bit-identical and the quick test holds the
``delta_speedup`` at >= 3x.

Gauges written (all under ``bench.stats.*``):
``wide_legacy_seconds`` / ``wide_batched_seconds`` / ``wide_speedup``,
``enedis_legacy_seconds`` / ``enedis_batched_seconds`` /
``enedis_speedup``, ``enedis_aggregate_hits``, ``parity_mismatches``,
``workers_{1,2,4}_seconds``, ``workers_speedup``,
``workers_parity_mismatches``, ``cpu_count``, ``ipc_bytes_heap``,
``ipc_bytes_shm``, ``ipc_shrink``, ``shm_attaches``,
``stmts_per_set``, ``stmts_batched``, ``stmt_shrink``,
``mqo_parity_mismatches``, ``delta_cold_seconds``,
``delta_incremental_seconds``, ``delta_speedup``,
``delta_partitions_skipped`` / ``delta_partitions_retested``,
``delta_parity_mismatches``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _harness import cli_main, print_report, run_once

from repro import obs
from repro.datasets import enedis_table
from repro.generation import GenerationConfig
from repro.generation.generator import run_stats_stage
from repro.insights import SignificanceConfig, enumerate_candidates, run_significance_tests
from repro.parallel import ParallelConfig
from repro.relational import table_from_arrays
from repro.runtime import resilient_generate, resilient_render
from repro.stats import derive_rng


def wide_table(n_rows: int, n_measures: int, n_vals: int = 4):
    """Balanced wide-measure synthetic: every pair shares one batch.

    Group sizes are exactly equal by construction, so all pair families of
    an attribute have identical ``(n_x, n_y)`` and the key-derived batch
    cache serves them all from one ``SharedPermutations`` — the regime the
    mask-GEMM kernel is built for.
    """
    rng = derive_rng(11, "stats-kernel-bench")
    cats = {
        "g": np.array([f"g{i % n_vals}" for i in range(n_rows)]),
        "h": np.array([f"h{i % 3}" for i in range(n_rows)]),
    }
    measures = {f"m{i}": rng.normal(i, 1 + i * 0.3, n_rows) for i in range(n_measures)}
    return table_from_arrays(cats, measures)


def time_kernels(table, n_permutations: int) -> dict:
    """Run the significance stage under both kernels; time and compare."""
    candidates = list(enumerate_candidates(table))
    timings: dict[str, float] = {}
    outputs: dict[str, list] = {}
    for kernel in ("legacy", "batched"):
        config = SignificanceConfig(kernel=kernel, n_permutations=n_permutations)
        start = time.perf_counter()
        tested = run_significance_tests(table, candidates, config)
        timings[kernel] = time.perf_counter() - start
        outputs[kernel] = [
            (t.candidate.key, t.statistic, t.p_value, t.p_adjusted) for t in tested
        ]
    mismatches = sum(
        1 for a, b in zip(outputs["legacy"], outputs["batched"]) if a != b
    )
    mismatches += abs(len(outputs["legacy"]) - len(outputs["batched"]))
    return {
        "n_candidates": len(candidates),
        "legacy_seconds": timings["legacy"],
        "batched_seconds": timings["batched"],
        "speedup": timings["legacy"] / timings["batched"],
        "mismatches": mismatches,
    }


def run_wide(quick: bool) -> dict:
    table = wide_table(2000 if quick else 6000, 8 if quick else 12)
    result = time_kernels(table, 400 if quick else 2000)
    obs.gauge("bench.stats.wide_legacy_seconds").set(result["legacy_seconds"])
    obs.gauge("bench.stats.wide_batched_seconds").set(result["batched_seconds"])
    obs.gauge("bench.stats.wide_speedup").set(result["speedup"])
    return result


def run_enedis(quick: bool) -> dict:
    """Figure 5's dataset: kernel timings plus an end-to-end cache check."""
    table = enedis_table(0.05 if quick else 0.15)
    result = time_kernels(table, 200 if quick else 500)
    obs.gauge("bench.stats.enedis_legacy_seconds").set(result["legacy_seconds"])
    obs.gauge("bench.stats.enedis_batched_seconds").set(result["batched_seconds"])
    obs.gauge("bench.stats.enedis_speedup").set(result["speedup"])

    # End to end under the default (batched) kernel: generation + render on
    # a fresh table, counting cross-stage aggregate-cache reuse.
    fresh = enedis_table(0.05 if quick else 0.15)
    config = GenerationConfig(
        significance=SignificanceConfig(
            kernel="batched", n_permutations=100 if quick else 200
        )
    )
    with obs.capture() as (_, metrics):
        run = resilient_generate(fresh, config, budget=6, solver="heuristic")
        resilient_render(run, fresh, table_name="enedis")
        snapshot = metrics.snapshot()["counters"]
    # Fold the captured run back into the ambient registry: the outcome-
    # labeled stage-duration histograms belong in the --metrics-out dump.
    obs.current_metrics().merge(metrics.export())
    hits = int(snapshot.get("cache.aggregate_hits", 0))
    misses = int(snapshot.get("cache.aggregate_misses", 0))
    obs.gauge("bench.stats.enedis_aggregate_hits").set(hits)
    obs.gauge("bench.stats.enedis_aggregate_misses").set(misses)
    result.update(aggregate_hits=hits, aggregate_misses=misses,
                  selected=len(run.selected))
    return result


def run_worker_scaling(quick: bool) -> dict:
    """The sharded pool over the statistics stage at 1/2/4 workers.

    Results must be bit-identical at every worker count (the PR 5
    determinism contract); wall-clock is recorded next to ``cpu_count``
    so the speedup — or its physical impossibility on one core — is
    reported honestly.
    """
    table = enedis_table(0.05 if quick else 0.15)
    seconds: dict[int, float] = {}
    reference: list | None = None
    mismatches = 0
    for workers in (1, 2, 4):
        config = GenerationConfig(
            significance=SignificanceConfig(n_permutations=100 if quick else 300),
            parallel=ParallelConfig(workers=workers, chunk_size=50),
        )
        start = time.perf_counter()
        stats = run_stats_stage(table, config)
        seconds[workers] = time.perf_counter() - start
        output = [
            (t.candidate.key, t.statistic, t.p_value, t.p_adjusted)
            for t in stats.significant
        ]
        if reference is None:
            reference = output
        else:
            mismatches += sum(1 for a, b in zip(reference, output) if a != b)
            mismatches += abs(len(reference) - len(output))
        obs.gauge(f"bench.stats.workers_{workers}_seconds").set(seconds[workers])
    cpus = os.cpu_count() or 1
    speedup = seconds[1] / seconds[4]
    obs.gauge("bench.stats.workers_speedup").set(speedup)
    obs.gauge("bench.stats.workers_parity_mismatches").set(mismatches)
    obs.gauge("bench.stats.cpu_count").set(cpus)
    return {
        "seconds": seconds,
        "speedup": speedup,
        "mismatches": mismatches,
        "cpu_count": cpus,
        "n_significant": len(reference or []),
    }


def run_data_plane(quick: bool) -> dict:
    """Heap pickling vs shm handles for the sharded stats stage.

    The workload is chosen so the *dataset*, not the results, dominates
    the wire: a large-row table with few candidate pairs.  Under the heap
    plane every worker receives the pickled table in its setup message;
    under the shm plane it receives a ~200-byte handle and attaches the
    one shared segment.  Task and result traffic is identical between the
    planes, so the ``ipc_bytes`` ratio isolates the data plane itself.
    """
    from repro.relational.store import shm_available

    table = wide_table(30_000 if quick else 60_000, 2)
    seconds: dict[str, float] = {}
    ipc: dict[str, int] = {}
    outputs: dict[str, list] = {}
    attaches = 0
    for store in ("heap", "shm"):
        if store == "shm" and not shm_available():
            break
        config = GenerationConfig(
            significance=SignificanceConfig(n_permutations=60 if quick else 200),
            parallel=ParallelConfig(workers=2, chunk_size=50, store=store),
        )
        with obs.capture() as (_, metrics):
            start = time.perf_counter()
            stats = run_stats_stage(table, config)
            seconds[store] = time.perf_counter() - start
            counters = metrics.snapshot()["counters"]
        ipc[store] = int(counters.get("parallel.ipc_bytes", 0))
        if store == "shm":
            attaches = int(counters.get("parallel.shm_attach", 0))
        outputs[store] = [
            (t.candidate.key, t.statistic, t.p_value, t.p_adjusted)
            for t in stats.significant
        ]
    if "shm" not in ipc:  # pragma: no cover - no-shm platforms
        return {"skipped": "shared memory unavailable"}
    mismatches = sum(1 for a, b in zip(outputs["heap"], outputs["shm"]) if a != b)
    mismatches += abs(len(outputs["heap"]) - len(outputs["shm"]))
    shrink = ipc["heap"] / max(1, ipc["shm"])
    obs.gauge("bench.stats.ipc_bytes_heap").set(ipc["heap"])
    obs.gauge("bench.stats.ipc_bytes_shm").set(ipc["shm"])
    obs.gauge("bench.stats.ipc_shrink").set(shrink)
    obs.gauge("bench.stats.shm_attaches").set(attaches)
    return {
        "n_rows": table.n_rows,
        "seconds": seconds,
        "ipc_bytes": ipc,
        "shrink": shrink,
        "attaches": attaches,
        "mismatches": mismatches,
    }


def run_mqo(quick: bool) -> dict:
    """Batched multi-aggregate compilation vs the per-set statement oracle.

    Wide-schema synthetic (many categorical attributes, so the set-cover
    evaluator's chosen cover is dozens of group-by sets) through the
    resilient pipeline on the sqlite pushdown backend, ``mqo`` off vs on.
    The supported queries and scores must match exactly; the recorded
    ``stmt_shrink`` is the whole point of the UNION-ALL grouping-set
    compiler — one compound statement where the per-set path sends one
    statement per set.
    """
    n_rows = 400 if quick else 1200
    n_attrs = 8 if quick else 10

    def mqo_table():
        rng = derive_rng(7, "mqo-wide")
        cats = {
            f"a{i}": rng.choice([f"a{i}v{j}" for j in range(3)], n_rows)
            for i in range(n_attrs)
        }
        shift = (cats["a0"] == "a0v0") * 12.0
        return table_from_arrays(cats, {"m": rng.normal(10, 2, n_rows) + shift})

    statements: dict[bool, int] = {}
    seconds: dict[bool, float] = {}
    outputs: dict[bool, list] = {}
    plan: dict | None = None
    for mqo in (False, True):
        table = mqo_table()
        config = GenerationConfig(
            significance=SignificanceConfig(n_permutations=100 if quick else 200),
            backend="sqlite",
            evaluator="setcover",
            mqo=mqo,
        )
        with obs.capture():
            start = time.perf_counter()
            run = resilient_generate(table, config, budget=6, solver="heuristic")
            seconds[mqo] = time.perf_counter() - start
        statements[mqo] = run.report.backend_statements
        outputs[mqo] = [
            (g.query, g.interest, g.tuples_aggregated, g.n_groups)
            for g in run.outcome.queries
        ]
        if mqo:
            plan = run.report.mqo_plan
    mismatches = sum(1 for a, b in zip(outputs[False], outputs[True]) if a != b)
    mismatches += abs(len(outputs[False]) - len(outputs[True]))
    shrink = statements[False] / max(1, statements[True])
    obs.gauge("bench.stats.stmts_per_set").set(statements[False])
    obs.gauge("bench.stats.stmts_batched").set(statements[True])
    obs.gauge("bench.stats.stmt_shrink").set(shrink)
    obs.gauge("bench.stats.mqo_parity_mismatches").set(mismatches)
    return {
        "n_attrs": n_attrs,
        "statements": {"per_set": statements[False], "batched": statements[True]},
        "seconds": {"per_set": seconds[False], "batched": seconds[True]},
        "plan": plan,
        "shrink": shrink,
        "mismatches": mismatches,
        "n_queries": len(outputs[True]),
    }


def run_delta(quick: bool) -> dict:
    """Incremental stats on appended data vs a cold run over the grown table.

    A many-valued balanced synthetic (so one attribute holds dozens of
    pair families), grown by a block that touches a single value per
    attribute: the memoized run re-tests only the families containing
    that value and serves the rest verbatim.  Merged results must be
    bit-identical to the cold run — the speedup comes from skipped
    permutation tests, not from approximation.
    """
    n_rows = 3000 if quick else 9000
    n_vals = 12
    n_measures = 6 if quick else 10
    rng = derive_rng(13, "delta-bench")
    # Skewed group sizes, as in real data: distinct pair sample sizes mean
    # each pair family keys its own permutation batch, so the cold run's
    # batch construction scales with every family while the incremental
    # run constructs batches only for the dirty ones.
    ramp = np.linspace(1.0, 2.2, n_vals)
    g = np.array([f"g{i}" for i in rng.choice(n_vals, n_rows, p=ramp / ramp.sum())])
    h = np.array([f"h{i}" for i in rng.choice(n_vals, n_rows, p=ramp[::-1] / ramp.sum())])
    # Plant real group effects so the parity check compares actual
    # significant insights, not two empty lists.
    measures = {
        f"m{i}": rng.normal(i, 1 + i * 0.3, n_rows)
        + np.where(g == f"g{2 + i % 4}", 4.0 + i, 0.0)
        for i in range(n_measures)
    }
    table = table_from_arrays({"g": g, "h": h}, measures)
    block = {
        "g": ["g0"] * 12,
        "h": ["h0"] * 12,
    }
    for name in table.schema.measure_names:
        block[name] = list(rng.normal(0, 1, 12))
    grown = table.append_block(block)

    from repro.relational.table import content_token
    from repro.stats.delta import IncrementalRequest

    config = GenerationConfig(
        significance=SignificanceConfig(n_permutations=400 if quick else 1000)
    )
    prefix = run_stats_stage(table, config, version=content_token(table))

    start = time.perf_counter()
    cold = run_stats_stage(grown, config)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_stats_stage(
        grown, config, incremental=IncrementalRequest(prefix.memo)
    )
    warm_seconds = time.perf_counter() - start

    def output(stats):
        return [
            (t.candidate.key, t.statistic, t.p_value, t.p_adjusted)
            for t in stats.significant
        ]

    mismatches = sum(1 for a, b in zip(output(cold), output(warm)) if a != b)
    mismatches += abs(len(cold.significant) - len(warm.significant))
    speedup = cold_seconds / warm_seconds
    skipped = warm.counters.get("stats_partitions_skipped", 0)
    retested = warm.counters.get("stats_partitions_retested", 0)
    obs.gauge("bench.stats.delta_cold_seconds").set(cold_seconds)
    obs.gauge("bench.stats.delta_incremental_seconds").set(warm_seconds)
    obs.gauge("bench.stats.delta_speedup").set(speedup)
    obs.gauge("bench.stats.delta_partitions_skipped").set(skipped)
    obs.gauge("bench.stats.delta_partitions_retested").set(retested)
    obs.gauge("bench.stats.delta_parity_mismatches").set(mismatches)
    return {
        "n_rows": grown.n_rows,
        "cold_seconds": cold_seconds,
        "incremental_seconds": warm_seconds,
        "speedup": speedup,
        "skipped": skipped,
        "retested": retested,
        "mismatches": mismatches,
        "n_significant": len(warm.significant),
    }


def build_delta_report(delta: dict) -> str:
    lines = [
        f"{'run':<14}{'stats stage (s)':>16}",
        f"{'cold':<14}{delta['cold_seconds']:>15.2f}s",
        f"{'incremental':<14}{delta['incremental_seconds']:>15.2f}s",
        "",
        f"delta speedup: {delta['speedup']:.1f}x over {delta['n_rows']} rows "
        f"({delta['skipped']} pair families reused, {delta['retested']} "
        f"re-tested); parity mismatches: {delta['mismatches']} over "
        f"{delta['n_significant']} significant insights",
    ]
    return "\n".join(lines)


def build_mqo_report(mqo: dict) -> str:
    plan = mqo["plan"] or {}
    lines = [
        f"{'plan':<12}{'statements':>12}{'support (s)':>13}",
        f"{'per-set':<12}{mqo['statements']['per_set']:>12}"
        f"{mqo['seconds']['per_set']:>12.2f}s",
        f"{'batched':<12}{mqo['statements']['batched']:>12}"
        f"{mqo['seconds']['batched']:>12.2f}s",
        "",
        f"statement shrink: {mqo['shrink']:.1f}x over {mqo['n_attrs']} "
        f"attributes ({plan.get('sets', '?')} group-by sets in "
        f"{plan.get('batches', '?')} batches); "
        f"parity mismatches: {mqo['mismatches']} over {mqo['n_queries']} queries",
    ]
    return "\n".join(lines)


def build_report(wide: dict, enedis: dict) -> str:
    lines = [
        f"{'workload':<16}{'candidates':>11}{'legacy':>9}{'batched':>9}{'speedup':>9}",
        f"{'wide synthetic':<16}{wide['n_candidates']:>11}"
        f"{wide['legacy_seconds']:>8.2f}s{wide['batched_seconds']:>8.2f}s"
        f"{wide['speedup']:>8.2f}x",
        f"{'enedis (fig5)':<16}{enedis['n_candidates']:>11}"
        f"{enedis['legacy_seconds']:>8.2f}s{enedis['batched_seconds']:>8.2f}s"
        f"{enedis['speedup']:>8.2f}x",
        "",
        f"parity mismatches: wide={wide['mismatches']} enedis={enedis['mismatches']}",
        f"end-to-end aggregate cache: hits={enedis['aggregate_hits']} "
        f"misses={enedis['aggregate_misses']} "
        f"(rendering reuses evaluation's group-bys)",
    ]
    return "\n".join(lines)


def build_workers_report(scaling: dict) -> str:
    lines = [
        f"{'workers':<10}{'stats stage (s)':>16}",
    ]
    for workers, seconds in sorted(scaling["seconds"].items()):
        lines.append(f"{workers:<10}{seconds:>15.2f}s")
    lines.append("")
    lines.append(
        f"speedup 1->4: {scaling['speedup']:.2f}x on {scaling['cpu_count']} "
        f"core(s); parity mismatches: {scaling['mismatches']} over "
        f"{scaling['n_significant']} significant insights"
    )
    if scaling["cpu_count"] < 2:
        lines.append("(single-core host: a >1x speedup is physically impossible; "
                     "the determinism check is the meaningful signal here)")
    return "\n".join(lines)


def build_data_plane_report(plane: dict) -> str:
    if "skipped" in plane:
        return f"skipped: {plane['skipped']}"
    heap_kb = plane["ipc_bytes"]["heap"] / 1024
    shm_kb = plane["ipc_bytes"]["shm"] / 1024
    lines = [
        f"{'plane':<10}{'stats stage (s)':>16}{'ipc':>12}",
        f"{'heap':<10}{plane['seconds']['heap']:>15.2f}s{heap_kb:>10.1f}kB",
        f"{'shm':<10}{plane['seconds']['shm']:>15.2f}s{shm_kb:>10.1f}kB",
        "",
        f"per-stage IPC shrink: {plane['shrink']:.1f}x over {plane['n_rows']} "
        f"rows ({plane['attaches']} zero-copy attaches); "
        f"parity mismatches: {plane['mismatches']}",
        "(wall-clock parity is expected here — the stage is compute-bound; "
        "the plane removes per-stage serialization, not permutations)",
    ]
    return "\n".join(lines)


def main(quick: bool = False) -> None:
    wide = run_wide(quick)
    enedis = run_enedis(quick)
    obs.gauge("bench.stats.parity_mismatches").set(
        wide["mismatches"] + enedis["mismatches"]
    )
    print_report("Stats kernel — batched mask-GEMM vs legacy gather", build_report(wide, enedis))
    scaling = run_worker_scaling(quick)
    print_report("Sharded pool — worker scaling over the stats stage",
                 build_workers_report(scaling))
    plane = run_data_plane(quick)
    print_report("Data plane — heap pickling vs shm handles",
                 build_data_plane_report(plane))
    mqo = run_mqo(quick)
    print_report("Multi-query optimization — batched vs per-set statements",
                 build_mqo_report(mqo))
    delta = run_delta(quick)
    print_report("Incremental recompute — appended data vs cold re-run",
                 build_delta_report(delta))


def test_stats_kernel_wide(benchmark, capsys):
    result = run_once(benchmark, run_wide, True)
    with capsys.disabled():
        print_report("Stats kernel (quick) — wide synthetic", str(result))
    assert result["mismatches"] == 0
    # The quick workload is too small to hold the full 3x bar reliably in
    # CI, but the batched kernel must never lose.
    assert result["speedup"] > 1.0


def test_stats_kernel_enedis_cache(benchmark, capsys):
    result = run_once(benchmark, run_enedis, True)
    with capsys.disabled():
        print_report("Stats kernel (quick) — enedis end to end", str(result))
    assert result["mismatches"] == 0
    assert result["aggregate_hits"] > 0


def test_stats_data_plane(benchmark, capsys):
    result = run_once(benchmark, run_data_plane, True)
    with capsys.disabled():
        print_report("Data plane (quick)", build_data_plane_report(result))
    if "skipped" in result:
        return
    assert result["mismatches"] == 0
    # The acceptance bar: shipping handles instead of pickled tables must
    # shrink per-stage IPC by at least an order of magnitude.
    assert result["shrink"] >= 10.0, result


def test_stats_mqo(benchmark, capsys):
    result = run_once(benchmark, run_mqo, True)
    with capsys.disabled():
        print_report("Multi-query optimization (quick)", build_mqo_report(result))
    assert result["mismatches"] == 0
    # The acceptance bar: batched compilation must collapse the pushed-down
    # statement count at least 5x on the wide schema.
    assert result["shrink"] >= 5.0, result


def test_stats_delta(benchmark, capsys):
    result = run_once(benchmark, run_delta, True)
    with capsys.disabled():
        print_report("Incremental recompute (quick)", build_delta_report(result))
    assert result["mismatches"] == 0
    assert result["skipped"] > result["retested"]
    # The acceptance bar: re-testing only the touched pair families must
    # beat the cold run at least 3x on the many-valued schema.
    assert result["speedup"] >= 3.0, result


def test_stats_kernel_worker_scaling(benchmark, capsys):
    result = run_once(benchmark, run_worker_scaling, True)
    with capsys.disabled():
        print_report("Worker scaling (quick)", build_workers_report(result))
    # Determinism is unconditional; speedup depends on physics.
    assert result["mismatches"] == 0
    if result["cpu_count"] >= 4:
        assert result["speedup"] > 1.2, result


if __name__ == "__main__":
    cli_main(main)
