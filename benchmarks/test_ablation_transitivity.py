"""Ablation — transitivity pruning of deducible insights (§3.3).

DESIGN.md decision 2: mean/variance insights form dominance orders, so
``x > y`` and ``y > z`` make ``x > z`` deducible.  We measure how much the
pruning shrinks the significant-insight set and the downstream query set,
and verify the pruned information is indeed recoverable (every pruned
insight is implied by a retained path).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import networkx as nx

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_table
from repro.generation import GenerationConfig, generate_comparison_queries
from repro.insights import enumerate_candidates, prune_transitive, run_significance_tests


def run_experiment(scale: float):
    table = enedis_table(scale)
    tested = run_significance_tests(table, enumerate_candidates(table))
    significant = [t for t in tested if t.is_significant()]
    pruned = prune_transitive(significant)

    with_pruning = generate_comparison_queries(table, GenerationConfig(prune_transitive=True))
    without = generate_comparison_queries(table, GenerationConfig(prune_transitive=False))

    # Verify: every pruned insight is implied by retained edges.
    retained_edges: dict[tuple, set[tuple[str, str]]] = {}
    for insight in pruned:
        c = insight.candidate
        retained_edges.setdefault((c.measure, c.attribute, c.type_code), set()).add(
            (c.val, c.val_other)
        )
    implied = 0
    pruned_keys = {i.key for i in pruned}
    removed = [i for i in significant if i.key not in pruned_keys]
    for insight in removed:
        c = insight.candidate
        edges = retained_edges.get((c.measure, c.attribute, c.type_code), set())
        graph = nx.DiGraph(edges)
        if graph.has_node(c.val) and graph.has_node(c.val_other) and nx.has_path(
            graph, c.val, c.val_other
        ):
            implied += 1
    rows = [
        ("significant insights", len(significant), len(pruned)),
        ("final query set |Q|", without.counters["queries_final"],
         with_pruning.counters["queries_final"]),
        ("hypothesis queries", without.counters["hypothesis_queries_evaluated"],
         with_pruning.counters["hypothesis_queries_evaluated"]),
    ]
    return rows, len(removed), implied


def build_report(rows, removed, implied) -> str:
    body = render_table(["quantity", "without pruning", "with pruning"], rows)
    return body + f"\n\npruned insights: {removed}; implied by a retained path: {implied}"


def main(quick: bool = False) -> None:
    rows, removed, implied = run_experiment(0.1 if quick else 0.3)
    print_report("Ablation — transitivity pruning", build_report(rows, removed, implied))


def test_ablation_transitivity(benchmark, capsys):
    rows, removed, implied = run_once(benchmark, run_experiment, 0.08)
    with capsys.disabled():
        print_report("Ablation (quick) — transitivity pruning", build_report(rows, removed, implied))
    # Soundness: everything pruned must be deducible from what is kept.
    assert implied == removed
    # Pruning only ever shrinks the downstream work.
    for _, without, with_p in rows:
        assert with_p <= without


if __name__ == "__main__":
    cli_main(main)
