"""Table 5 — average deviation of Algorithm 3's objective from the optimum.

Paper: deviation ((cplex.z − algo3.z)/cplex.z)×100 stays very low (1.14%
at 100 queries, shrinking to 0.03% at 600).  Shape to reproduce: small
deviations that *decrease* as instances grow (more good queries to pick
from).  Timeout instances are excluded, as in the paper.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once
from tap_experiments import (
    SEEDS_FULL,
    SEEDS_QUICK,
    SIZES_FULL,
    SIZES_QUICK,
    completed,
    run_protocol,
    stat,
)

from repro.evaluation import render_table

PAPER_ROWS = """paper: 100q 1.14±1.52%, 200q 0.17±0.12%, 300q 0.10±0.09%,
400q 0.06±0.06%, 500q 0.06±0.05%, 600q 0.03±0.04%"""


def build_table(by_size) -> str:
    rows = []
    for n, runs in by_size.items():
        done = [r for r in completed(runs) if r.exact_interest > 0]
        if not done:
            rows.append((n, "(all timed out)"))
            continue
        deviations = [
            (r.exact_interest - r.heuristic_interest) / r.exact_interest * 100.0
            for r in done
        ]
        s = stat(deviations)
        rows.append((n, f"{s.mean:.2f} ±{s.std:.2f} %"))
    body = render_table(["#Queries", "Deviation"], rows)
    return body + "\n\n" + PAPER_ROWS


def main(quick: bool = False) -> None:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    seeds = SEEDS_QUICK if quick else SEEDS_FULL
    by_size = run_protocol(sizes, seeds)
    print_report("Table 5 — heuristic deviation from optimal objective", build_table(by_size))


def test_table5_deviation(benchmark, capsys):
    by_size = run_once(benchmark, run_protocol, SIZES_QUICK, SEEDS_QUICK, 2.0)
    with capsys.disabled():
        print_report("Table 5 (quick) — heuristic deviation", build_table(by_size))
    # The heuristic can never beat the proven optimum.
    for runs in by_size.values():
        for r in completed(runs):
            assert r.heuristic_interest <= r.exact_interest + 1e-9


if __name__ == "__main__":
    cli_main(main)
