"""Serving-layer load generator — latency, shed rate, cache amortization.

Drives a real :class:`repro.serve.ReproServer` over HTTP sockets through
two phases and reports what the robustness machinery delivered:

* **steady** — a small client pool against a roomy queue: every request
  should complete (or degrade, never hang), repeat requests against the
  warm dataset should hit the cross-stage aggregate cache, and the
  client-observed latency distribution is the headline number;
* **burst** — every request at once against a deliberately tiny queue:
  admission control must shed the overflow with 429s while everything
  admitted still terminates.

``--metrics-out BENCH_serve.json`` emits the machine-readable document
(p50/p99 latency, shed rate, cache hits as ``bench.serve.*`` gauges);
the CI serve-smoke job uploads it as an artifact.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro import obs
from repro.config import ReproConfig
from repro.datasets import covid_table
from repro.evaluation import render_table
from repro.relational import write_csv
from repro.serve import ReproServer, ServeConfig
from repro.serve.jobs import TERMINAL_STATES

#: Client-side bound on any single request (submit + poll), seconds.
CLIENT_TIMEOUT = 60.0


def _http(url: str, method: str = "GET", body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=CLIENT_TIMEOUT) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_phase(
    server: ReproServer,
    n_requests: int,
    clients: int,
) -> dict:
    """Fire ``n_requests`` from ``clients`` threads; gather the outcomes."""
    latencies: list[float] = []
    statuses: list[str] = []
    lock = threading.Lock()
    counter = iter(range(n_requests))

    def client() -> None:
        while True:
            with lock:
                try:
                    next(counter)
                except StopIteration:
                    return
            start = time.perf_counter()
            code, body = _http(f"{server.url}/generate", "POST",
                               {"dataset": "covid"})
            if code == 202:
                code, body = _http(
                    f"{server.url}/jobs/{body['job']}?wait={CLIENT_TIMEOUT}"
                )
                status = body["status"]
            else:  # 429 shed / 503 circuit: already terminal
                status = "shed"
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                statuses.append(status)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=CLIENT_TIMEOUT * n_requests)

    shed = sum(1 for s in statuses if s == "shed")
    terminal = sum(1 for s in statuses if s in TERMINAL_STATES)
    (dataset,) = server.registry.snapshot()
    return {
        "requests": len(statuses),
        "terminal": terminal,
        "completed": sum(1 for s in statuses if s == "completed"),
        "degraded": sum(1 for s in statuses if s == "degraded"),
        "failed": sum(1 for s in statuses if s == "failed"),
        "shed": shed,
        "shed_rate": shed / max(1, len(statuses)),
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "cache_hits": dataset["cache"]["aggregate_hits"],
        "cache_misses": dataset["cache"]["aggregate_misses"],
    }


def run_experiment(quick: bool) -> dict[str, dict]:
    rows = 200 if quick else 400
    steady_n = 8 if quick else 24
    burst_n = 8 if quick else 16
    repro_config = ReproConfig(budget=3.0).with_significance(
        n_permutations=30 if quick else 80
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        csv = Path(tmp) / "covid.csv"
        write_csv(covid_table(rows), csv)

        steady_server = ReproServer(
            ServeConfig(port=0, max_queue_depth=64, max_inflight_cost=256.0,
                        default_deadline_seconds=CLIENT_TIMEOUT,
                        job_attempts=2),
            repro_config=repro_config,
        )
        with steady_server:
            steady_server.registry.register("covid", csv)
            steady = run_phase(steady_server, steady_n, clients=2)
            # Fold the server's registry (labeled job counters, latency and
            # queue-wait histograms) into the ambient one, so the
            # --metrics-out document carries the real bucket counts.
            obs.current_metrics().merge(steady_server.metrics.export())

        burst_server = ReproServer(
            ServeConfig(port=0, max_queue_depth=2, max_inflight_cost=256.0,
                        default_deadline_seconds=CLIENT_TIMEOUT,
                        job_attempts=2),
            repro_config=repro_config,
        )
        with burst_server:
            burst_server.registry.register("covid", csv)
            burst = run_phase(burst_server, burst_n, clients=burst_n)
            obs.current_metrics().merge(burst_server.metrics.export())

    for phase, result in (("steady", steady), ("burst", burst)):
        for key in ("p50_seconds", "p99_seconds", "shed_rate",
                    "cache_hits", "cache_misses", "requests", "terminal"):
            obs.gauge(f"bench.serve.{phase}_{key}").set(float(result[key]))
    return {"steady": steady, "burst": burst}


def build_table(results: dict[str, dict]) -> str:
    body = render_table(
        ["phase", "requests", "terminal", "completed", "shed",
         "shed rate", "p50 (s)", "p99 (s)", "cache hits"],
        [
            (phase, r["requests"], r["terminal"], r["completed"], r["shed"],
             f"{r['shed_rate']:.2f}", f"{r['p50_seconds']:.2f}",
             f"{r['p99_seconds']:.2f}", int(r["cache_hits"]))
            for phase, r in results.items()
        ],
    )
    return body + (
        "\n\nsteady: roomy queue, 2 clients — everything terminates, warm-\n"
        "session cache hits amortize repeat requests; burst: all requests\n"
        "at once into a 2-deep queue — admission sheds the overflow with\n"
        "429s, admitted work still terminates."
    )


def main(quick: bool = False) -> None:
    results = run_experiment(quick)
    print_report("Serving layer — load, shedding, and latency", build_table(results))
    for phase, r in results.items():
        if r["terminal"] != r["requests"]:
            raise SystemExit(
                f"{phase}: {r['requests'] - r['terminal']} request(s) never "
                "reached a terminal state"
            )


def test_serve_load(benchmark, capsys):
    results = run_once(benchmark, run_experiment, True)
    with capsys.disabled():
        print_report("Serving layer (quick) — load + shedding",
                     build_table(results))
    steady, burst = results["steady"], results["burst"]
    # Every request, both phases, reached a terminal state.
    assert steady["terminal"] == steady["requests"]
    assert burst["terminal"] == burst["requests"]
    # The steady phase sheds nothing and hits the warm aggregate cache.
    assert steady["shed_rate"] == 0.0
    assert steady["cache_hits"] > 0
    # The burst into a 2-deep queue must shed some of the overflow.
    assert burst["shed_rate"] > 0.0
    assert steady["p50_seconds"] <= steady["p99_seconds"]


if __name__ == "__main__":
    cli_main(main)
