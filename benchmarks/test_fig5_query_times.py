"""Figure 5 — distribution of comparison-query run times.

Paper: a sample of comparison queries on ENEDIS all run in roughly the
same time (a tight histogram), justifying the uniform cost model of the
TAP.  We time a random sample of comparison queries through the SQL
engine and check the distribution is tight (90th percentile within a
small factor of the median).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_histogram
from repro.queries import ComparisonQuery, MeasuredCost
from repro.stats import derive_rng


def sample_queries(table, n: int, seed: int) -> list[ComparisonQuery]:
    """Random valid comparison queries over the table's actual values."""
    rng = derive_rng(seed, "fig5")
    cats = table.schema.categorical_names
    measures = table.schema.measure_names
    queries: list[ComparisonQuery] = []
    while len(queries) < n:
        b, a = rng.choice(len(cats), size=2, replace=False)
        b_name, a_name = cats[int(b)], cats[int(a)]
        values = sorted(set(table.categorical_column(b_name).values()) - {""})
        if len(values) < 2:
            continue
        v1, v2 = rng.choice(len(values), size=2, replace=False)
        queries.append(
            ComparisonQuery(
                a_name,
                b_name,
                values[int(v1)],
                values[int(v2)],
                measures[int(rng.integers(len(measures)))],
                ("sum", "avg")[int(rng.integers(2))],
            )
        )
    return queries


def run_experiment(scale: float, n_queries: int) -> list[float]:
    table = enedis_table(scale)
    model = MeasuredCost(table, "enedis")
    queries = sample_queries(table, n_queries, seed=17)
    return [model.cost(q) for q in queries]


def build_report(times: list[float]) -> str:
    arr = np.array(times)
    stats = (
        f"n={arr.size}  median={np.median(arr)*1000:.2f}ms  "
        f"p10={np.percentile(arr, 10)*1000:.2f}ms  p90={np.percentile(arr, 90)*1000:.2f}ms  "
        f"max={arr.max()*1000:.2f}ms"
    )
    return (
        render_histogram(list(arr), n_bins=12)
        + "\n"
        + stats
        + "\npaper: all comparison queries cost roughly the same -> uniform TAP cost model"
    )


def main(quick: bool = False) -> None:
    times = run_experiment(0.1 if quick else 0.5, 30 if quick else 120)
    print_report("Figure 5 — comparison query run-time distribution", build_report(times))


def test_fig5_query_times(benchmark, capsys):
    times = run_once(benchmark, run_experiment, 0.1, 25)
    with capsys.disabled():
        print_report("Figure 5 (quick) — run-time distribution", build_report(times))
    arr = np.array(times)
    # The uniform-cost claim: the bulk of queries cost about the same.
    assert np.percentile(arr, 90) <= 12 * np.median(arr)


if __name__ == "__main__":
    cli_main(main)
