"""Figure 9 — sampling strategies on the larger Flights dataset.

Paper: full WSC-approx on Flights takes 14+ hours, so only the sampling
variants are run, at rates {5, 10, 20, 30}%.  Observations to reproduce:

* unbalanced outperforms random at equal rates (runtime and robustness);
* hypothesis-query evaluation and TAP solving are insensitive to the rate
  (they always run on the full data);
* at aggressive rates the %-insights ratio can *exceed* 100% — spurious
  insights detected on the tiny sample — and the excess shrinks as the
  rate grows.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import flights_table
from repro.evaluation import render_table
from repro.generation import GenerationConfig, SamplingSpec, generate_comparison_queries
from repro.insights import SignificanceConfig

RATES = (0.05, 0.1, 0.2, 0.3)
PAPER_NOTE = """paper: unbalanced faster & more robust than random; hyp. evaluation
(~20s) and TAP (~300ms) flat across rates; %insights can exceed 100%
(spurious detections on small samples), shrinking as the rate grows"""


def run_experiment(scale: float, rates, n_permutations: int = 500) -> dict:
    table = flights_table(scale)
    significance = SignificanceConfig(n_permutations=n_permutations)
    reference = generate_comparison_queries(table, GenerationConfig(significance=significance))
    ref_keys = {i.key for i in reference.significant}
    rows = []
    for strategy in ("unbalanced", "random"):
        for rate in rates:
            config = GenerationConfig(
                significance=significance, sampling=SamplingSpec(strategy, rate)
            )
            start = time.perf_counter()
            outcome = generate_comparison_queries(table, config)
            wall = time.perf_counter() - start
            found = {i.key for i in outcome.significant}
            ratio = len(found) / len(ref_keys) if ref_keys else 0.0
            spurious = len(found - ref_keys)
            rows.append(
                (
                    strategy,
                    rate,
                    wall,
                    outcome.timings.hypothesis_evaluation,
                    ratio,
                    spurious,
                )
            )
    return {"reference": len(ref_keys), "rows": rows}


def build_table(results) -> str:
    rows = [
        (s, f"{rate:.0%}", f"{wall:.2f}", f"{hyp:.2f}", f"{ratio:.1%}", spurious)
        for s, rate, wall, hyp, ratio, spurious in results["rows"]
    ]
    body = render_table(
        ["strategy", "rate", "runtime (s)", "hyp. eval (s)", "%insights vs full", "#spurious"],
        rows,
    )
    return f"reference: {results['reference']} insights on full data\n" + body + "\n\n" + PAPER_NOTE


def main(quick: bool = False) -> None:
    results = run_experiment(0.05 if quick else 0.3, (0.1, 0.3) if quick else RATES,
                             200 if quick else 500)
    print_report("Figure 9 — sampling on the Flights-like dataset", build_table(results))


def test_fig9_flights(benchmark, capsys):
    results = run_once(benchmark, run_experiment, 0.05, (0.1, 0.3), 200)
    with capsys.disabled():
        print_report("Figure 9 (quick) — Flights sampling", build_table(results))
    rows = {(s, r): (w, h, ratio, sp) for s, r, w, h, ratio, sp in results["rows"]}
    # Sampling is faster than full generation would be; rates flat for hyp eval.
    for strategy in ("unbalanced", "random"):
        hyp_small = rows[(strategy, 0.1)][1]
        hyp_large = rows[(strategy, 0.3)][1]
        assert hyp_large <= 4 * hyp_small + 0.5  # insensitive to the rate
    # Larger samples find at least as many true insights.
    assert rows[("unbalanced", 0.3)][2] >= rows[("unbalanced", 0.1)][2] - 0.05


if __name__ == "__main__":
    cli_main(main)
