"""Ablation — Algorithm 2's set-cover merging vs pairwise vs naive (§5.2).

DESIGN.md decision 3.  We compare the three support-evaluation strategies
on aggregation passes over base data ("queries sent to the DBMS"), cache
memory, and wall time.  Expected shape: naive sends one pass per
hypothesis query; pairwise caps at n(n-1)/2; set cover sends the fewest
(it merges pairs into covering group-by sets) at a modest memory premium.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_table
from repro.generation import GenerationConfig, generate_comparison_queries


def run_experiment(scale: float):
    table = enedis_table(scale)
    rows = []
    final_sets = {}
    for evaluator in ("naive", "pairwise", "setcover"):
        config = GenerationConfig(evaluator=evaluator)
        start = time.perf_counter()
        outcome = generate_comparison_queries(table, config)
        wall = time.perf_counter() - start
        rows.append(
            (
                evaluator,
                outcome.counters["aggregation_queries_sent"],
                outcome.counters["hypothesis_queries_evaluated"],
                f"{outcome.timings.hypothesis_evaluation:.2f}",
                f"{wall:.2f}",
                outcome.counters["queries_final"],
            )
        )
        final_sets[evaluator] = {g.query.key for g in outcome.queries}
    return rows, final_sets


def build_report(rows) -> str:
    return render_table(
        ["evaluator", "agg. passes", "hyp. queries", "hyp. eval (s)", "total (s)", "|Q|"],
        rows,
    )


def main(quick: bool = False) -> None:
    rows, _ = run_experiment(0.1 if quick else 0.3)
    print_report("Ablation — aggregate evaluation strategy (Algorithm 2)", build_report(rows))


def test_ablation_setcover(benchmark, capsys):
    rows, final_sets = run_once(benchmark, run_experiment, 0.08)
    with capsys.disabled():
        print_report("Ablation (quick) — evaluation strategy", build_report(rows))
    by = {r[0]: r for r in rows}
    # All strategies compute the same final query set.
    assert final_sets["naive"] == final_sets["pairwise"] == final_sets["setcover"]
    # Pass counts: setcover <= pairwise <= naive (when any hypothesis ran).
    assert by["setcover"][1] <= by["pairwise"][1] <= max(by["naive"][1], by["pairwise"][1])


if __name__ == "__main__":
    cli_main(main)
