"""Figure 6 — adjusting the sample size (ENEDIS).

Paper: runtime and % of insights detected vs sample size, for
unbalanced-sampling (top) and random-sampling (bottom).  Unbalanced
reaches ~95% of insights around a 20% sample; random needs ~40% for a
similar ratio — because unbalanced preserves minority values.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import enedis_table
from repro.evaluation import render_table
from repro.generation import GenerationConfig, SamplingSpec, generate_comparison_queries
from repro.insights import SignificanceConfig

PAPER_NOTE = (
    "paper: unbalanced ~95% insights at 20% sample; random needs ~40% for a similar\n"
    "ratio (our reduced scale shifts absolute levels down, but the equivalence\n"
    "'unbalanced at r ~ random at 2r' is the reproduced shape)"
)


def run_experiment(scale: float, rates, n_permutations: int = 1000) -> dict:
    table = enedis_table(scale)
    significance = SignificanceConfig(n_permutations=n_permutations)
    reference = generate_comparison_queries(table, GenerationConfig(significance=significance))
    ref_keys = {i.key for i in reference.significant}
    results = {"reference": len(ref_keys), "rows": []}
    for strategy in ("unbalanced", "random"):
        for rate in rates:
            config = GenerationConfig(
                significance=significance, sampling=SamplingSpec(strategy, rate)
            )
            start = time.perf_counter()
            outcome = generate_comparison_queries(table, config)
            wall = time.perf_counter() - start
            keys = {i.key for i in outcome.significant}
            fraction = len(keys & ref_keys) / len(ref_keys) if ref_keys else 0.0
            results["rows"].append((strategy, rate, wall, fraction))
    return results


def build_table(results) -> str:
    rows = [
        (strategy, f"{rate:.0%}", f"{wall:.2f}", f"{fraction:.1%}")
        for strategy, rate, wall, fraction in results["rows"]
    ]
    body = render_table(["strategy", "sample", "runtime (s)", "% insights found"], rows)
    return (
        f"reference (full data): {results['reference']} significant insights\n"
        + body
        + "\n\n"
        + PAPER_NOTE
    )


def main(quick: bool = False) -> None:
    rates = (0.1, 0.2, 0.4) if quick else (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)
    results = run_experiment(0.15 if quick else 1.0, rates, 200 if quick else 1000)
    print_report("Figure 6 — sample size vs runtime and %insights", build_table(results))


def test_fig6_sample_size(benchmark, capsys):
    results = run_once(benchmark, run_experiment, 0.12, (0.1, 0.3), 200)
    with capsys.disabled():
        print_report("Figure 6 (quick) — sample size", build_table(results))
    rows = results["rows"]
    by = {(s, r): (w, f) for s, r, w, f in rows}
    # More sample -> more insights found, for both strategies.
    for strategy in ("unbalanced", "random"):
        assert by[(strategy, 0.3)][1] >= by[(strategy, 0.1)][1] - 0.05
    # Unbalanced at a small rate detects at least as much as random.
    assert by[("unbalanced", 0.1)][1] >= by[("random", 0.1)][1] - 0.10


if __name__ == "__main__":
    cli_main(main)
