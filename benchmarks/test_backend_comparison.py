"""Backend comparison — columnar vs sqlite on the Fig. 5 workload.

The backend split (see docs/backends.md) promises that the SQLite
pushdown engine answers the same comparison queries as the in-process
columnar engine, at the cost of real SQL round trips.  This experiment
times the Fig. 5 query sample under both backends through the pairwise
evaluator, checks numerical parity, and prints the per-backend
``queries_sent`` / ``statements_executed`` digest — the paper's
"queries sent to the DBMS" accounting.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _harness import cli_main, print_report, run_once
from test_fig5_query_times import sample_queries

from repro.backend import BACKEND_NAMES, create_backend
from repro.datasets import enedis_table
from repro.generation import PairwiseEvaluator


def run_backend(name: str, table, queries) -> dict:
    backend = create_backend(name, table)
    try:
        evaluator = PairwiseEvaluator(backend)
        start = time.perf_counter()
        results = [evaluator.evaluate(q) for q in queries]
        seconds = time.perf_counter() - start
        return {
            "backend": name,
            "seconds": seconds,
            "queries_sent": evaluator.queries_sent,
            "statements_executed": backend.statements_executed,
            "results": results,
        }
    finally:
        backend.close()


def run_experiment(scale: float, n_queries: int) -> dict[str, dict]:
    table = enedis_table(scale)
    queries = sample_queries(table, n_queries, seed=17)
    return {name: run_backend(name, table, queries) for name in BACKEND_NAMES}


def assert_parity(runs: dict[str, dict]) -> None:
    reference = runs[BACKEND_NAMES[0]]["results"]
    for name in BACKEND_NAMES[1:]:
        for got, ref in zip(runs[name]["results"], reference):
            assert got.groups == ref.groups, name
            np.testing.assert_allclose(got.x, ref.x, rtol=0, atol=1e-9)
            np.testing.assert_allclose(got.y, ref.y, rtol=0, atol=1e-9)


def build_report(runs: dict[str, dict], n_queries: int) -> str:
    lines = [f"n_queries={n_queries}"]
    for name, run in runs.items():
        lines.append(
            f"{name:<10} {run['seconds']*1000:8.1f}ms  "
            f"queries_sent={run['queries_sent']:<4d} "
            f"statements_executed={run['statements_executed']}"
        )
    base = runs["columnar"]["seconds"]
    if base > 0:
        lines.append(
            f"sqlite/columnar wall-clock ratio: "
            f"{runs['sqlite']['seconds'] / base:.2f}x"
        )
    lines.append("parity: identical groups, series equal within 1e-9")
    return "\n".join(lines)


def main(quick: bool = False) -> None:
    scale, n_queries = (0.1, 25) if quick else (0.5, 100)
    runs = run_experiment(scale, n_queries)
    assert_parity(runs)
    print_report(
        "Backend comparison — columnar vs sqlite (Fig. 5 workload)",
        build_report(runs, n_queries),
    )


def test_backend_comparison(benchmark, capsys):
    runs = run_once(benchmark, run_experiment, 0.1, 20)
    with capsys.disabled():
        print_report(
            "Backend comparison (quick)", build_report(runs, 20)
        )
    assert_parity(runs)
    assert runs["columnar"]["statements_executed"] == 0
    assert runs["sqlite"]["statements_executed"] > 0
    # The pairwise cache makes both engines send far fewer group-bys
    # than there are queries.
    for run in runs.values():
        assert run["queries_sent"] <= 20


if __name__ == "__main__":
    cli_main(main)
