"""Ablation — Benjamini-Hochberg correction vs uncorrected testing (§5.1.1).

The paper's premise (via Zgraggen et al.) is that uncontrolled multiple
comparisons make ~60% of user-reported insights spurious.  This ablation
quantifies what the BH correction buys on a *null* dataset (no planted
effects — every "significant" insight is a false discovery) and what it
costs on the planted ENEDIS-like dataset (true effects).

Expected shape: without correction, the null dataset yields a false
discovery count around α × #tests; BH crushes it to ~0, while on planted
data it keeps the bulk of the true detections.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once

from repro.datasets import CategoricalSpec, MeasureSpec, SyntheticSpec, enedis_table, generate
from repro.evaluation import render_table
from repro.insights import SignificanceConfig, enumerate_candidates, run_significance_tests


def null_dataset(n_rows: int, seed: int = 7):
    """No planted effects: measures are pure noise, independent of attributes."""
    spec = SyntheticSpec(
        "null",
        n_rows,
        (
            CategoricalSpec("a", 8, skew=0.0),
            CategoricalSpec("b", 12, skew=0.3),
            CategoricalSpec("c", 5, skew=0.0),
        ),
        (
            MeasureSpec("m1", base=100.0, noise=20.0,
                        mean_effect_sigma=0.0, variance_effect_sigma=0.0),
            MeasureSpec("m2", base=10.0, noise=3.0,
                        mean_effect_sigma=0.0, variance_effect_sigma=0.0),
        ),
        seed=seed,
    )
    return generate(spec)


def run_experiment(scale: float):
    null_table = null_dataset(int(2000 * scale))
    planted = enedis_table(scale * 0.8)
    rows = []
    for label, table in (("null (no effects)", null_table), ("planted (ENEDIS-like)", planted)):
        candidates = list(enumerate_candidates(table))
        for correction, apply_bh in (("uncorrected", False), ("BH-corrected", True)):
            config = SignificanceConfig(apply_bh=apply_bh)
            tested = run_significance_tests(table, candidates, config)
            significant = sum(1 for t in tested if t.is_significant())
            rows.append(
                (label, correction, len(tested), significant,
                 f"{significant / max(1, len(tested)):.2%}")
            )
    return rows


def build_report(rows) -> str:
    body = render_table(
        ["dataset", "p-values", "#tests", "#significant", "rate"], rows
    )
    return body + (
        "\n\nOn the null dataset every 'significant' insight is a false discovery"
        "\n(Zgraggen et al.'s multiple-comparisons problem); BH is what keeps the"
        "\nnotebooks non-spurious."
    )


def main(quick: bool = False) -> None:
    rows = run_experiment(0.3 if quick else 1.0)
    print_report("Ablation — Benjamini-Hochberg correction", build_report(rows))


def test_ablation_bh(benchmark, capsys):
    rows = run_once(benchmark, run_experiment, 0.3)
    with capsys.disabled():
        print_report("Ablation (quick) — BH correction", build_report(rows))
    by = {(r[0], r[1]): r for r in rows}
    null_raw = by[("null (no effects)", "uncorrected")][3]
    null_bh = by[("null (no effects)", "BH-corrected")][3]
    # BH must reduce false discoveries on the null dataset...
    assert null_bh <= null_raw
    # ...down to (near) zero.
    n_tests = by[("null (no effects)", "BH-corrected")][2]
    assert null_bh <= max(2, 0.01 * n_tests)
    # On planted data BH still detects plenty (the uncorrected count is not
    # a fair denominator — it is itself inflated by false discoveries).
    planted_bh = by[("planted (ENEDIS-like)", "BH-corrected")][3]
    planted_tests = by[("planted (ENEDIS-like)", "BH-corrected")][2]
    assert planted_bh / max(1, planted_tests) > 0.02
    # And the planted detection rate dwarfs the null dataset's.
    null_rate = null_bh / max(1, n_tests)
    assert planted_bh / max(1, planted_tests) > 10 * max(null_rate, 1e-4)


if __name__ == "__main__":
    cli_main(main)
