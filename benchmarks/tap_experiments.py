"""Shared protocol for the artificial-TAP experiments (Tables 4, 5, 6).

Paper protocol (Section 6.2): artificial query sets of increasing size,
uniform interest/cost/distance distributions, 30 instances per size,
ε_t = 25 queries in the solution, 1-hour CPLEX timeout.

Scaled protocol (see DESIGN.md §5): our exact solver is pure Python, so
the solution size shrinks to 6 and the timeout to seconds.  Two instance
regimes reproduce the paper's two phenomena at this scale:

* **Table 4 (time wall)** uses the weighted-Hamming instances with a
  loose-ish ε_d — the hardest regime for branch-and-bound (little
  pruning), where solve time explodes with size and timeouts appear;
* **Tables 5/6 (heuristic quality)** use the theme-clustered instances
  with a tight ε_d — the regime the real pipeline induces (interest
  correlated with distance), where Algorithm 3's objective deviation is
  small and decreasing with size while the top-k baseline's recall is
  capped by its one-pick-per-theme scattering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation import AggregateStat
from repro.tap import (
    ExactConfig,
    HeuristicConfig,
    random_clustered_instance,
    random_hamming_instance,
    solve_baseline,
    solve_exact,
    solve_heuristic,
)

#: Scaled stand-ins for the paper's ε_t = 25 (hard regime slightly larger:
#: the subset space must be big enough to exhibit the timeout wall).
BUDGET_QUALITY = 6
BUDGET_HARD = 7
#: ε_d for the hard (Table 4) regime on Hamming instances.
EPSILON_D_HARD = 24.0
#: ε_d for the quality (Tables 5/6) regime on clustered instances.
EPSILON_D_QUALITY = 0.3
#: Scaled stand-in for CPLEX's 1-hour wall.
TIMEOUT_SECONDS = 5.0
#: Paper uses 30 instances per size.
SEEDS_FULL = 30
SEEDS_QUICK = 5
SIZES_FULL = (25, 50, 100, 200, 400, 800)
SIZES_QUICK = (50, 100)


@dataclass(frozen=True, slots=True)
class InstanceRun:
    """Exact + heuristic + baseline outcomes on one instance."""

    n: int
    seed: int
    exact_seconds: float
    timed_out: bool
    exact_interest: float
    heuristic_interest: float
    heuristic_recall: float
    baseline_recall: float


def _run_instance(
    instance, n: int, seed: int, budget: float, epsilon_d: float, timeout: float
) -> InstanceRun:
    exact = solve_exact(instance, ExactConfig(budget, epsilon_d, timeout_seconds=timeout))
    heuristic = solve_heuristic(instance, HeuristicConfig(budget, epsilon_d))
    baseline = solve_baseline(instance, budget)
    optimal = set(exact.solution.indices)
    recall_h = len(optimal & set(heuristic.indices)) / len(optimal) if optimal else 0.0
    recall_b = len(optimal & set(baseline.indices)) / len(optimal) if optimal else 0.0
    return InstanceRun(
        n=n,
        seed=seed,
        exact_seconds=exact.solve_seconds,
        timed_out=exact.timed_out,
        exact_interest=exact.solution.interest,
        heuristic_interest=heuristic.interest,
        heuristic_recall=recall_h,
        baseline_recall=recall_b,
    )


def run_hard_instance(n: int, seed: int, timeout: float = TIMEOUT_SECONDS) -> InstanceRun:
    """Table 4 regime: Hamming metric, loose ε_d."""
    instance = random_hamming_instance(n, seed=seed)
    return _run_instance(instance, n, seed, BUDGET_HARD, EPSILON_D_HARD, timeout)


def run_quality_instance(n: int, seed: int, timeout: float = TIMEOUT_SECONDS) -> InstanceRun:
    """Tables 5/6 regime: theme clusters, tight ε_d."""
    instance = random_clustered_instance(n, seed=seed)
    return _run_instance(instance, n, seed, BUDGET_QUALITY, EPSILON_D_QUALITY, timeout)


def run_protocol(
    sizes, n_seeds, timeout: float = TIMEOUT_SECONDS, regime: str = "quality"
) -> dict[int, list[InstanceRun]]:
    """All instance runs, grouped by size (regime: 'hard' or 'quality')."""
    runner = run_hard_instance if regime == "hard" else run_quality_instance
    by_size: dict[int, list[InstanceRun]] = {}
    for n in sizes:
        by_size[n] = [runner(n, seed, timeout) for seed in range(n_seeds)]
    return by_size


def completed(runs: list[InstanceRun]) -> list[InstanceRun]:
    """Runs where the exact solver proved optimality (no timeout)."""
    return [r for r in runs if not r.timed_out]


def stat(values: list[float]) -> AggregateStat:
    return AggregateStat.of(values)
