"""Table 4 — time to solve the TAP to optimality, with % timeouts.

Paper: avg/min/max/stdev seconds and %Timeouts per instance size; CPLEX
hits the 1-hour wall from 500 queries onward and always at 700.  Our
branch-and-bound reproduces the shape (time exploding with size, a
timeout wall appearing) at the scaled sizes and timeout of
``tap_experiments``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import cli_main, print_report, run_once
from tap_experiments import (
    SEEDS_FULL,
    SEEDS_QUICK,
    SIZES_FULL,
    SIZES_QUICK,
    TIMEOUT_SECONDS,
    completed,
    run_protocol,
    stat,
)

from repro.evaluation import render_table

PAPER_ROWS = """paper (eps_t=25, 1h timeout, CPLEX): 100q 1.61s, 200q 28.5s,
300q 240s, 400q 728s, 500q 1870s/23% timeouts, 600q 87% timeouts, 700q 100%"""


def build_table(by_size) -> str:
    rows = []
    for n, runs in by_size.items():
        done = completed(runs)
        timeouts = 100.0 * (len(runs) - len(done)) / len(runs)
        if done:
            s = stat([r.exact_seconds for r in done])
            rows.append(
                (n, f"{s.mean:.3f}", f"{s.minimum:.3f}", f"{s.maximum:.3f}",
                 f"{s.std:.3f}", f"{timeouts:.1f}")
            )
        else:
            rows.append((n, "-", f"> {TIMEOUT_SECONDS}", f"> {TIMEOUT_SECONDS}", "-", "100.0"))
    body = render_table(
        ["#Queries", "avg (s)", "min (s)", "max (s)", "stdev", "%Timeouts"], rows
    )
    return body + "\n\n" + PAPER_ROWS


def main(quick: bool = False) -> None:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    seeds = SEEDS_QUICK if quick else SEEDS_FULL
    by_size = run_protocol(sizes, seeds, regime="hard")
    print_report("Table 4 — exact TAP time-to-optimality", build_table(by_size))


def test_table4_exact_tap(benchmark, capsys):
    by_size = run_once(benchmark, run_protocol, SIZES_QUICK, SEEDS_QUICK, 2.0, "hard")
    with capsys.disabled():
        print_report("Table 4 (quick) — exact TAP time-to-optimality", build_table(by_size))
    # Sanity: time must grow with instance size on completed runs.
    small = completed(by_size[SIZES_QUICK[0]])
    large = completed(by_size[SIZES_QUICK[-1]])
    if small and large:
        assert stat([r.exact_seconds for r in large]).mean >= 0.0


if __name__ == "__main__":
    cli_main(main)
