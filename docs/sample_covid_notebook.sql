-- # Sample: COVID-19 comparison notebook
--
-- Automatically generated comparison notebook over **covid** (6 comparison queries).
--
-- Each query compares an aggregate of a measure between two values of a categorical attribute, grouped by another attribute. Every reported insight passed a permutation test with Benjamini-Hochberg correction.

-- ## Query 1: avg(deaths) by month — country = AM2 vs EU0
--
-- Interestingness 0.4938 — aggregates 102 tuples into 4 groups.
--
-- Insights evidenced by this comparison:
-- - **mean greater**: deaths for country=AM2 dominates country=EU0 (significance 0.991, credibility 2/2)
-- - **variance greater**: deaths for country=AM2 dominates country=EU0 (significance 0.991, credibility 1/2)
--
-- The difference is driven mostly by 5 (35% of the gap), 4 (30% of the gap), 6 (29% of the gap).

select t1.month, AM2, EU0
from
  (select country, month, avg(deaths) as AM2
   from covid
   where country = 'AM2'
   group by country, month) t1,
  (select country, month, avg(deaths) as EU0
   from covid
   where country = 'EU0'
   group by country, month) t2
where t1.month = t2.month
order by t1.month;

-- ## Query 2: avg(cases) by month — country = AM2 vs EU0
--
-- Interestingness 0.4938 — aggregates 102 tuples into 4 groups.
--
-- Insights evidenced by this comparison:
-- - **mean greater**: cases for country=AM2 dominates country=EU0 (significance 0.991, credibility 2/2)
-- - **variance greater**: cases for country=AM2 dominates country=EU0 (significance 0.991, credibility 1/2)
--
-- The difference is driven mostly by 5 (39% of the gap), 6 (28% of the gap), 4 (23% of the gap).

select t1.month, AM2, EU0
from
  (select country, month, avg(cases) as AM2
   from covid
   where country = 'AM2'
   group by country, month) t1,
  (select country, month, avg(cases) as EU0
   from covid
   where country = 'EU0'
   group by country, month) t2
where t1.month = t2.month
order by t1.month;

-- ## Query 3: avg(cases) by month — country = EU2 vs AS2
--
-- Interestingness 0.9697 — aggregates 97 tuples into 4 groups.
--
-- Insights evidenced by this comparison:
-- - **mean greater**: cases for country=EU2 dominates country=AS2 (significance 0.985, credibility 1/2)
-- - **variance greater**: cases for country=EU2 dominates country=AS2 (significance 0.963, credibility 1/2)
--
-- The difference is driven mostly by 5 (38% of the gap), 6 (29% of the gap), 4 (22% of the gap).

select t1.month, EU2, AS2
from
  (select country, month, avg(cases) as EU2
   from covid
   where country = 'EU2'
   group by country, month) t1,
  (select country, month, avg(cases) as AS2
   from covid
   where country = 'AS2'
   group by country, month) t2
where t1.month = t2.month
order by t1.month;

-- ## Query 4: avg(cases) by month — country = EU1 vs AS2
--
-- Interestingness 0.9752 — aggregates 96 tuples into 4 groups.
--
-- Insights evidenced by this comparison:
-- - **mean greater**: cases for country=EU1 dominates country=AS2 (significance 0.991, credibility 1/2)
-- - **variance greater**: cases for country=EU1 dominates country=AS2 (significance 0.968, credibility 1/2)
--
-- The difference is driven mostly by 5 (40% of the gap), 6 (27% of the gap), 4 (23% of the gap).

select t1.month, EU1, AS2
from
  (select country, month, avg(cases) as EU1
   from covid
   where country = 'EU1'
   group by country, month) t1,
  (select country, month, avg(cases) as AS2
   from covid
   where country = 'AS2'
   group by country, month) t2
where t1.month = t2.month
order by t1.month;

-- ## Query 5: avg(cases) by month — country = EU4 vs AS2
--
-- Interestingness 0.9863 — aggregates 94 tuples into 4 groups.
--
-- Insights evidenced by this comparison:
-- - **mean greater**: cases for country=EU4 dominates country=AS2 (significance 0.991, credibility 1/2)
-- - **variance greater**: cases for country=EU4 dominates country=AS2 (significance 0.991, credibility 1/2)
--
-- The difference is driven mostly by 5 (40% of the gap), 6 (26% of the gap), 4 (22% of the gap).

select t1.month, EU4, AS2
from
  (select country, month, avg(cases) as EU4
   from covid
   where country = 'EU4'
   group by country, month) t1,
  (select country, month, avg(cases) as AS2
   from covid
   where country = 'AS2'
   group by country, month) t2
where t1.month = t2.month
order by t1.month;

-- ## Query 6: avg(deaths) by month — country = EU4 vs AS4
--
-- Interestingness 0.9634 — aggregates 80 tuples into 4 groups.
--
-- Insights evidenced by this comparison:
-- - **mean greater**: deaths for country=EU4 dominates country=AS4 (significance 0.980, credibility 1/2)
-- - **variance greater**: deaths for country=EU4 dominates country=AS4 (significance 0.963, credibility 1/2)
--
-- The difference is driven mostly by 5 (38% of the gap), 6 (23% of the gap), 3 (21% of the gap).

select t1.month, EU4, AS4
from
  (select country, month, avg(deaths) as EU4
   from covid
   where country = 'EU4'
   group by country, month) t1,
  (select country, month, avg(deaths) as AS4
   from covid
   where country = 'AS4'
   group by country, month) t2
where t1.month = t2.month
order by t1.month;
